//! Table 11 / Fig. 13 benches: building the HYPRE graph from an extracted
//! workload — the batched quantitative pass vs the transactional
//! qualitative pass — and raw batched node insertion scaling.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};

use dblp_workload::{extract, gen};
use hypre_bench::experiments::fig13_insertion_scaling;
use hypre_core::prelude::*;

fn bench_graph_build(c: &mut Criterion) {
    let dataset = gen::generate(&gen::GeneratorConfig {
        papers: 1500,
        authors: 600,
        venues: 30,
        ..gen::GeneratorConfig::default()
    });
    let workload = extract::extract(&dataset, &extract::ExtractionConfig::default());

    let mut g = c.benchmark_group("table11_ingest");
    g.sample_size(10);
    g.bench_function("quantitative_pass", |b| {
        b.iter_batched(
            HypreGraph::new,
            |mut graph| {
                graph.load(&workload.quantitative, &[]).unwrap();
                black_box(graph.node_count())
            },
            BatchSize::LargeInput,
        );
    });
    g.bench_function("qualitative_pass", |b| {
        // Qualitative insertion includes cycle checks and intensity
        // propagation; measured on top of a pre-built quantitative layer,
        // exactly like the dissertation's two-step load.
        b.iter_batched(
            || {
                let mut graph = HypreGraph::new();
                graph.load(&workload.quantitative, &[]).unwrap();
                graph
            },
            |mut graph| {
                graph.load(&[], &workload.qualitative).unwrap();
                black_box(graph.edge_count())
            },
            BatchSize::LargeInput,
        );
    });
    g.bench_function("full_load", |b| {
        b.iter_batched(
            HypreGraph::new,
            |mut graph| {
                let report = graph
                    .load(&workload.quantitative, &workload.qualitative)
                    .unwrap();
                black_box(report.qualitative)
            },
            BatchSize::LargeInput,
        );
    });
    g.finish();

    let mut g = c.benchmark_group("fig13_insertion_scaling");
    g.sample_size(10);
    for total in [50_000usize, 100_000, 200_000] {
        g.bench_function(format!("{total}_nodes_10k_batches"), |b| {
            b.iter(|| black_box(fig13_insertion_scaling(total, 10_000).len()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_graph_build);
criterion_main!(benches);
