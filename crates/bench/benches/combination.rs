//! Benches for the exploratory combination algorithms (Figs. 18–36):
//! Combine-Two under both semantics, Partially-Combine-All, Bias-Random,
//! the utility/coverage metric computations they feed, and the
//! set-algebra micro-bench comparing the interned-bitset engine against
//! the pre-PR-1 `HashSet<Value>` baseline at 2k and 20k papers.

use std::sync::OnceLock;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hypre_bench::baseline::HashSetAlgebra;
use hypre_bench::experiments::{coverage_report, utility_series};
use hypre_bench::Fixture;
use hypre_core::prelude::*;

fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(Fixture::small)
}

fn bench_combination(c: &mut Criterion) {
    let fx = fixture();
    let user = fx.rich_user;
    let atoms = fx.graph.positive_profile(user);

    let mut g = c.benchmark_group("combination_algorithms");
    g.sample_size(10);
    g.bench_function("combine_two/and", |b| {
        let exec = fx.executor();
        b.iter(|| {
            black_box(
                combine_two(&atoms, &exec, CombineSemantics::And)
                    .unwrap()
                    .len(),
            )
        });
    });
    g.bench_function("combine_two/and_or", |b| {
        let exec = fx.executor();
        b.iter(|| {
            black_box(
                combine_two(&atoms, &exec, CombineSemantics::AndOr)
                    .unwrap()
                    .len(),
            )
        });
    });
    g.bench_function("partially_combine_all", |b| {
        let exec = fx.executor();
        b.iter(|| black_box(partially_combine_all(&atoms, &exec).unwrap().len()));
    });
    g.bench_function("bias_random/one_run", |b| {
        let exec = fx.executor();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(bias_random(&atoms, &exec, seed).unwrap().valid)
        });
    });
    g.finish();

    let mut g = c.benchmark_group("metrics");
    g.sample_size(10);
    g.bench_function("utility_series/figs18_25", |b| {
        b.iter(|| black_box(utility_series(fx, user, &[2, 5, 10]).unwrap().len()));
    });
    g.bench_function("coverage/fig28", |b| {
        b.iter(|| black_box(coverage_report(fx, user).unwrap().hypre));
    });
    g.finish();
}

/// Bitset-vs-hashset set algebra over real profile tuple sets, at 2 000
/// and 20 000 papers. Both sides run against pre-warmed memo caches so
/// the comparison isolates the algebra, not the SQL.
fn bench_set_algebra(c: &mut Criterion) {
    for n in [2_000usize, 20_000] {
        let fx = Fixture::papers(n);
        let atoms = fx.graph.positive_profile(fx.rich_user);
        let exec = fx.executor();
        let baseline = HashSetAlgebra::new(&exec);
        baseline.warm(&atoms).unwrap();
        // Warm the bitset caches and pick the two densest preferences —
        // the worst case for per-element hash probing.
        let mut by_size: Vec<usize> = (0..atoms.len()).collect();
        let counts: Vec<u64> = atoms
            .iter()
            .map(|a| exec.count(&a.predicate).unwrap())
            .collect();
        by_size.sort_by_key(|&i| std::cmp::Reverse(counts[i]));
        let (pa, pb) = (&atoms[by_size[0]].predicate, &atoms[by_size[1]].predicate);
        let (sa, sb) = (exec.tuple_set(pa).unwrap(), exec.tuple_set(pb).unwrap());
        let (ha, hb) = (
            baseline.tuple_set(pa).unwrap(),
            baseline.tuple_set(pb).unwrap(),
        );

        let mut g = c.benchmark_group(format!("set_algebra_{n}"));
        g.sample_size(10);
        g.bench_function("and_count/bitset", |b| {
            b.iter(|| black_box(sa.and_count(&sb)))
        });
        g.bench_function("and_count/hashset", |b| {
            b.iter(|| black_box(ha.iter().filter(|v| hb.contains(*v)).count()))
        });
        g.bench_function("or/bitset", |b| b.iter(|| black_box(sa.or(&sb).count())));
        g.bench_function("or/hashset", |b| {
            b.iter(|| black_box(ha.union(&hb).count()))
        });
        g.bench_function("and_not/bitset", |b| {
            b.iter(|| black_box(sa.and_not(&sb).count()))
        });
        g.bench_function("and_not/hashset", |b| {
            b.iter(|| black_box(ha.difference(&hb).count()))
        });
        let units: Vec<&relstore::Predicate> = atoms.iter().take(4).map(|a| &a.predicate).collect();
        g.bench_function("and4/bitset", |b| {
            b.iter(|| black_box(exec.count_and(&units).unwrap()))
        });
        g.bench_function("and4/hashset", |b| {
            b.iter(|| black_box(baseline.and_set(&units).unwrap().len()))
        });
        g.bench_function("score_tuples/dense", |b| {
            b.iter(|| black_box(score_tuples(&exec, &atoms).unwrap().len()))
        });
        g.bench_function("score_tuples/hashmap", |b| {
            b.iter(|| black_box(baseline.score_tuples(&atoms).unwrap().len()))
        });
        g.finish();
    }
}

criterion_group!(benches, bench_combination, bench_set_algebra);
criterion_main!(benches);
