//! Benches for the exploratory combination algorithms (Figs. 18–36):
//! Combine-Two under both semantics, Partially-Combine-All, Bias-Random,
//! and the utility/coverage metric computations they feed.

use std::sync::OnceLock;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hypre_bench::experiments::{coverage_report, utility_series};
use hypre_bench::Fixture;
use hypre_core::prelude::*;

fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(Fixture::small)
}

fn bench_combination(c: &mut Criterion) {
    let fx = fixture();
    let user = fx.rich_user;
    let atoms = fx.graph.positive_profile(user);

    let mut g = c.benchmark_group("combination_algorithms");
    g.sample_size(10);
    g.bench_function("combine_two/and", |b| {
        let exec = fx.executor();
        b.iter(|| {
            black_box(combine_two(&atoms, &exec, CombineSemantics::And).unwrap().len())
        });
    });
    g.bench_function("combine_two/and_or", |b| {
        let exec = fx.executor();
        b.iter(|| {
            black_box(
                combine_two(&atoms, &exec, CombineSemantics::AndOr)
                    .unwrap()
                    .len(),
            )
        });
    });
    g.bench_function("partially_combine_all", |b| {
        let exec = fx.executor();
        b.iter(|| black_box(partially_combine_all(&atoms, &exec).unwrap().len()));
    });
    g.bench_function("bias_random/one_run", |b| {
        let exec = fx.executor();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(bias_random(&atoms, &exec, seed).unwrap().valid)
        });
    });
    g.finish();

    let mut g = c.benchmark_group("metrics");
    g.sample_size(10);
    g.bench_function("utility_series/figs18_25", |b| {
        b.iter(|| black_box(utility_series(fx, user, &[2, 5, 10]).unwrap().len()));
    });
    g.bench_function("coverage/fig28", |b| {
        b.iter(|| black_box(coverage_report(fx, user).unwrap().hypre));
    });
    g.finish();
}

criterion_group!(benches, bench_combination);
criterion_main!(benches);
