//! Three-way `adaptive-vs-bitset-vs-hashset` set-algebra benches at 2 000
//! and 20 000 papers: the PR 2 adaptive [`TupleSet`] engine against the
//! PR 1 pure-bitmap `BitSet` generation and the seed `HashSet<Value>`
//! generation, on identical profile tuple sets.
//!
//! Two operand regimes per corpus size:
//!
//! * **dense** — the profile's two largest tuple sets (both bitmap
//!   containers), where the adaptive engine must match PR 1's word-wide
//!   loops;
//! * **sparse** — the two smallest non-empty tuple sets (array
//!   containers: the single-author/rare-venue long tail that dominates
//!   the extracted workload), where `O(cardinality)` merges should beat
//!   `O(universe/64)` word loops.
//!
//! Plus the end-to-end `PairwiseCache`/PEPS comparison across all three
//! generations.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hypre_bench::baseline::{HashSetAlgebra, SeedPeps};
use hypre_bench::bitset_baseline::{BitsetAlgebra, BitsetPeps};
use hypre_bench::Fixture;
use hypre_core::prelude::*;

/// Profile indices of the two densest and the two sparsest (non-empty)
/// tuple sets.
fn pick_operands(exec: &Executor<'_>, atoms: &[PrefAtom]) -> ((usize, usize), (usize, usize)) {
    let counts: Vec<u64> = atoms
        .iter()
        .map(|a| exec.count(&a.predicate).unwrap())
        .collect();
    let mut by_size: Vec<usize> = (0..atoms.len()).filter(|&i| counts[i] > 0).collect();
    by_size.sort_by_key(|&i| std::cmp::Reverse(counts[i]));
    assert!(
        by_size.len() >= 4,
        "bench fixture profile has only {} non-empty tuple sets; need 4 for \
         distinct dense and sparse operand pairs",
        by_size.len()
    );
    let dense = (by_size[0], by_size[1]);
    let sparse = (by_size[by_size.len() - 1], by_size[by_size.len() - 2]);
    (dense, sparse)
}

fn bench_adaptive_vs_bitset_vs_hashset(c: &mut Criterion) {
    for n in [2_000usize, 20_000] {
        let fx = Fixture::papers(n);
        let atoms = fx.graph.positive_profile(fx.rich_user);
        let exec = fx.executor();
        let hashset = HashSetAlgebra::new(&exec);
        let bitset = BitsetAlgebra::new(&exec);
        hashset.warm(&atoms).unwrap();
        bitset.warm(&atoms).unwrap();
        let ((d0, d1), (s0, s1)) = pick_operands(&exec, &atoms);

        for (regime, i, j) in [("dense", d0, d1), ("sparse", s0, s1)] {
            let (pa, pb) = (&atoms[i].predicate, &atoms[j].predicate);
            let (aa, ab) = (exec.tuple_set(pa).unwrap(), exec.tuple_set(pb).unwrap());
            let (ba, bb) = (bitset.tuple_set(pa).unwrap(), bitset.tuple_set(pb).unwrap());
            let (ha, hb) = (
                hashset.tuple_set(pa).unwrap(),
                hashset.tuple_set(pb).unwrap(),
            );

            let mut g = c.benchmark_group(format!("adaptive_vs_bitset_vs_hashset_{n}/{regime}"));
            g.sample_size(10);
            g.bench_function("and_count/adaptive", |b| {
                b.iter(|| black_box(aa.and_count(&ab)))
            });
            g.bench_function("and_count/bitset", |b| {
                b.iter(|| black_box(ba.and_count(&bb)))
            });
            g.bench_function("and_count/hashset", |b| {
                b.iter(|| black_box(ha.iter().filter(|v| hb.contains(*v)).count()))
            });
            g.bench_function("or/adaptive", |b| b.iter(|| black_box(aa.or(&ab).count())));
            g.bench_function("or/bitset", |b| b.iter(|| black_box(ba.or(&bb).count())));
            g.bench_function("or/hashset", |b| {
                b.iter(|| black_box(ha.union(&hb).count()))
            });
            g.bench_function("and_not/adaptive", |b| {
                b.iter(|| black_box(aa.and_not(&ab).count()))
            });
            g.bench_function("and_not/bitset", |b| {
                b.iter(|| black_box(ba.and_not(&bb).count()))
            });
            g.bench_function("and_not/hashset", |b| {
                b.iter(|| black_box(ha.difference(&hb).count()))
            });
            g.finish();
        }

        // End-to-end: pairwise build + PEPS top-k across the generations.
        let pairs = PairwiseCache::build(&atoms, &exec).unwrap();
        let mut g = c.benchmark_group(format!("adaptive_vs_bitset_vs_hashset_{n}/engine"));
        g.sample_size(10);
        g.bench_function("pairwise_build/adaptive", |b| {
            b.iter(|| {
                black_box(
                    PairwiseCache::build(&atoms, &exec)
                        .unwrap()
                        .applicable_count(),
                )
            })
        });
        g.bench_function("pairwise_build/bitset", |b| {
            b.iter(|| black_box(bitset.pairwise_counts(&atoms).unwrap().len()))
        });
        g.bench_function("pairwise_build/hashset", |b| {
            b.iter(|| black_box(hashset.pairwise_counts(&atoms).unwrap().len()))
        });
        let adaptive_peps = Peps::new(&atoms, &exec, &pairs, PepsVariant::Complete);
        let bitset_peps = BitsetPeps::new(&atoms, &bitset, &pairs, PepsVariant::Complete);
        let seed_peps = SeedPeps::new(&atoms, &hashset, &pairs, PepsVariant::Complete);
        g.bench_function("peps_top_k10/adaptive", |b| {
            b.iter(|| black_box(adaptive_peps.top_k(10).unwrap().len()))
        });
        g.bench_function("peps_top_k10/bitset", |b| {
            b.iter(|| black_box(bitset_peps.top_k(10).unwrap().len()))
        });
        g.bench_function("peps_top_k10/hashset", |b| {
            b.iter(|| black_box(seed_peps.top_k(10).unwrap().len()))
        });
        g.finish();
    }
}

criterion_group!(benches, bench_adaptive_vs_bitset_vs_hashset);
criterion_main!(benches);
