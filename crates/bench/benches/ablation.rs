//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Intensity propagation model** — the dissertation's exponential
//!    Eq. 4.1/4.2 pair vs the linear alternative (§4.4 notes the
//!    exponential pair is "one example of such functions"). Measures graph
//!    build time; correctness equivalence is covered by tests.
//! 2. **The PEPS pairwise cache** — set-intersection construction through
//!    the memoised executor vs the naive construction that issues one
//!    relational count query per pair (what a direct reading of §5.5
//!    against MySQL would do).

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};

use dblp_workload::{extract, gen, load};
use hypre_core::prelude::*;
use relstore::ColRef;

fn bench_intensity_model(c: &mut Criterion) {
    let dataset = gen::generate(&gen::GeneratorConfig {
        papers: 1200,
        authors: 500,
        venues: 30,
        ..gen::GeneratorConfig::default()
    });
    let workload = extract::extract(&dataset, &extract::ExtractionConfig::default());

    let mut g = c.benchmark_group("ablation_intensity_fn");
    g.sample_size(10);
    for (label, model) in [
        ("exponential", IntensityModel::Exponential),
        ("linear", IntensityModel::Linear),
    ] {
        g.bench_function(label, |b| {
            b.iter_batched(
                || HypreGraph::with_config(model, DefaultValueStrategy::default()),
                |mut graph| {
                    graph
                        .load(&workload.quantitative, &workload.qualitative)
                        .unwrap();
                    black_box(graph.node_count())
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

fn bench_pairwise_cache(c: &mut Criterion) {
    let dataset = gen::generate(&gen::GeneratorConfig {
        papers: 1200,
        authors: 500,
        venues: 30,
        ..gen::GeneratorConfig::default()
    });
    let workload = extract::extract(&dataset, &extract::ExtractionConfig::default());
    let db = load::load(&dataset).unwrap();
    let mut graph = HypreGraph::new();
    graph
        .load(&workload.quantitative, &workload.qualitative)
        .unwrap();
    let user = *graph.users().first().expect("users exist");
    let richest = graph
        .users()
        .into_iter()
        .max_by_key(|u| graph.positive_profile(*u).len())
        .unwrap_or(user);
    let atoms = graph.positive_profile(richest);

    let mut g = c.benchmark_group("ablation_pair_cache");
    g.sample_size(10);
    g.bench_function("set_intersection_build", |b| {
        b.iter(|| {
            let exec = Executor::new(&db, BaseQuery::dblp());
            black_box(
                PairwiseCache::build(&atoms, &exec)
                    .unwrap()
                    .applicable_count(),
            )
        });
    });
    g.bench_function("naive_sql_per_pair", |b| {
        // One COUNT(DISTINCT pid) query per pair, no memoisation — the
        // cost the cache removes.
        b.iter(|| {
            let base = BaseQuery::dblp();
            let mut applicable = 0usize;
            for (i, a) in atoms.iter().enumerate() {
                for bq in atoms.iter().skip(i + 1) {
                    let pred = a.predicate.clone().and(bq.predicate.clone());
                    let n = base
                        .select_for(&pred)
                        .count_distinct(&db, &ColRef::parse("dblp.pid"))
                        .unwrap();
                    if n > 0 {
                        applicable += 1;
                    }
                }
            }
            black_box(applicable)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_intensity_model, bench_pairwise_cache);
criterion_main!(benches);
