//! PR 3 concurrency benches: the sharded pairwise build at 1/2/4 worker
//! threads and the multi-session serving path (N sessions over one
//! shared `ProfileCache` snapshot versus N cold executors).
//!
//! Note the worker rows measure *the same bytes* at every thread count —
//! `tests/parallel_equivalence.rs` proves the results identical — so any
//! delta is pure scheduling: speedup on multi-core hosts, spawn overhead
//! on single-core ones (the shim prints whatever the hardware gives).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;

use hypre_bench::{serving, Fixture};
use hypre_core::prelude::*;

fn bench_parallel_pairwise(c: &mut Criterion) {
    for n in [2_000usize, 20_000] {
        let fx = Fixture::papers(n);
        let atoms = fx.graph.positive_profile(fx.rich_user);
        let exec = fx.executor();
        // Warm the memo so the timed region is the triangular pass alone.
        let _ = PairwiseCache::build(&atoms, &exec).unwrap();

        let mut g = c.benchmark_group(format!("parallel_pairwise_{n}"));
        g.sample_size(10);
        for threads in [1usize, 2, 4] {
            g.bench_function(format!("threads_{threads}"), |b| {
                b.iter(|| {
                    black_box(
                        PairwiseCache::build_with(&atoms, &exec, Parallelism::threads(threads))
                            .unwrap()
                            .applicable_count(),
                    )
                })
            });
        }
        g.finish();
    }
}

fn bench_multi_session(c: &mut Criterion) {
    const SESSIONS: usize = 4;
    let fx = Fixture::papers(2_000);
    let atoms = fx.graph.positive_profile(fx.rich_user);
    let warm = fx.executor();
    let _ = PairwiseCache::build(&atoms, &warm).unwrap();
    let cache = Arc::new(ProfileCache::snapshot(&warm));
    let base = BaseQuery::dblp();

    // Both shapes run concurrently (hypre_bench::serving): the delta is
    // what the shared snapshot buys, not thread-level parallelism.
    let mut g = c.benchmark_group("multi_session_2000");
    g.sample_size(10);
    g.bench_function(format!("cold_{SESSIONS}_sessions"), |b| {
        b.iter(|| {
            black_box(serving::serve_cold_concurrent(
                &fx.db, &base, &atoms, SESSIONS, 10,
            ))
        })
    });
    g.bench_function(format!("shared_{SESSIONS}_sessions"), |b| {
        b.iter(|| {
            black_box(serving::serve_shared_concurrent(
                &fx.db, &cache, &atoms, SESSIONS, 10,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_parallel_pairwise, bench_multi_session);
criterion_main!(benches);
