//! PEPS benches (Figs. 37–40): pairwise-cache construction, Top-K latency
//! for both variants across K, the TA baseline over the same data, and
//! the bitset-vs-hashset comparison of the pairwise build and the Top-K
//! scoring loop at 2k and 20k papers.

use std::sync::OnceLock;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hypre_bench::baseline::{HashSetAlgebra, SeedPeps};
use hypre_bench::ta_glue::{build_graded_lists, f_and_agg};
use hypre_bench::Fixture;
use hypre_core::prelude::*;
use hypre_topk::{nra, threshold_algorithm};

fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(Fixture::small)
}

fn bench_peps(c: &mut Criterion) {
    let fx = fixture();
    let user = fx.rich_user;
    let atoms = fx.graph.positive_profile(user);
    let exec = fx.executor();
    let pairs = PairwiseCache::build(&atoms, &exec).unwrap();

    let mut g = c.benchmark_group("peps");
    g.sample_size(10);
    g.bench_function("pairwise_cache/build", |b| {
        b.iter(|| {
            let fresh_exec = fx.executor();
            black_box(
                PairwiseCache::build(&atoms, &fresh_exec)
                    .unwrap()
                    .applicable_count(),
            )
        });
    });
    for k in [10usize, 100, 400] {
        g.bench_function(format!("top_k/approximate/k{k}"), |b| {
            b.iter(|| {
                let peps = Peps::new(&atoms, &exec, &pairs, PepsVariant::Approximate);
                black_box(peps.top_k(k).unwrap().len())
            });
        });
        g.bench_function(format!("top_k/complete/k{k}"), |b| {
            b.iter(|| {
                let peps = Peps::new(&atoms, &exec, &pairs, PepsVariant::Complete);
                black_box(peps.top_k(k).unwrap().len())
            });
        });
    }
    g.finish();

    let mut g = c.benchmark_group("topk_baselines");
    g.sample_size(10);
    let lists = build_graded_lists(&exec, &atoms).unwrap();
    for k in [10usize, 100, 400] {
        g.bench_function(format!("ta/k{k}"), |b| {
            b.iter(|| black_box(threshold_algorithm(&lists, k, f_and_agg).len()));
        });
        g.bench_function(format!("nra/k{k}"), |b| {
            b.iter(|| black_box(nra(&lists, k, f_and_agg).len()));
        });
    }
    g.finish();
}

/// Bitset engine vs the pre-PR-1 `HashSet<Value>` baseline on the two
/// paths the acceptance criteria measure: `PairwiseCache::build` and the
/// PEPS Top-K scoring loop, at 2 000 and 20 000 papers. Memo caches are
/// pre-warmed on both sides so the timed region is the set algebra.
fn bench_bitset_vs_hashset(c: &mut Criterion) {
    for n in [2_000usize, 20_000] {
        let fx = Fixture::papers(n);
        let atoms = fx.graph.positive_profile(fx.rich_user);
        let exec = fx.executor();
        let baseline = HashSetAlgebra::new(&exec);
        baseline.warm(&atoms).unwrap();
        let pairs = PairwiseCache::build(&atoms, &exec).unwrap(); // warms bitsets

        let mut g = c.benchmark_group(format!("pairwise_cache_{n}"));
        g.sample_size(10);
        g.bench_function("build/bitset", |b| {
            b.iter(|| {
                black_box(
                    PairwiseCache::build(&atoms, &exec)
                        .unwrap()
                        .applicable_count(),
                )
            })
        });
        g.bench_function("build/hashset", |b| {
            b.iter(|| black_box(baseline.pairwise_counts(&atoms).unwrap().len()))
        });
        g.finish();

        let peps = Peps::new(&atoms, &exec, &pairs, PepsVariant::Complete);
        let seed = SeedPeps::new(&atoms, &baseline, &pairs, PepsVariant::Complete);
        let mut g = c.benchmark_group(format!("top_k_{n}"));
        g.sample_size(10);
        for k in [10usize, 100] {
            g.bench_function(format!("k{k}/bitset"), |b| {
                b.iter(|| black_box(peps.top_k(k).unwrap().len()))
            });
            g.bench_function(format!("k{k}/hashset"), |b| {
                b.iter(|| black_box(seed.top_k(k).unwrap().len()))
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_peps, bench_bitset_vs_hashset);
criterion_main!(benches);
