//! Append-only corpus splits for the live-ingest experiments: one
//! dataset carved into a **base** prefix (the corpus a `ProfileCache`
//! was warmed on) and a **full** database that is the base plus an
//! appended delta — the exact shape `ProfileCache::ingest_delta`
//! accepts.
//!
//! The split appends through `Table::insert`, so `full` is row-for-row
//! identical to `base` on the shared prefix (same row ids, same index
//! state): an executor over `full` is the ground truth an
//! epoch-advanced snapshot must reproduce byte-for-byte.

use std::collections::HashSet;

use dblp_workload::{load, DblpDataset};
use relstore::{Database, Value};

/// An append-only pair of databases over one dataset, plus the delta
/// row counts (for reporting).
pub struct CorpusSplit {
    /// The truncated corpus the snapshot is warmed on.
    pub base: Database,
    /// `base` plus the appended delta — the "live" corpus.
    pub full: Database,
    /// `dblp` rows in the delta.
    pub delta_papers: usize,
    /// `dblp_author` rows in the delta.
    pub delta_links: usize,
}

/// Splits `dataset` so that `keep` (a fraction in `(0, 1]`) of the
/// papers — and the authorship links touching them — form the base
/// corpus, and the remainder arrives later as an append-only delta.
/// Authors and citations are identical in both databases: the profile
/// predicates (and the §6.1 base query) only reach `dblp` and
/// `dblp_author`, so only those two relations need to grow.
pub fn split_corpus(dataset: &DblpDataset, keep: f64) -> CorpusSplit {
    let total = dataset.papers.len();
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let keep_n = ((total as f64 * keep) as usize).clamp(1, total);
    let kept_pids: HashSet<u64> = dataset.papers[..keep_n].iter().map(|p| p.pid).collect();

    let mut truncated = dataset.clone();
    truncated.papers.truncate(keep_n);
    truncated
        .paper_authors
        .retain(|pa| kept_pids.contains(&pa.pid));
    let base = load::load(&truncated).expect("schema is valid");

    let mut full = base.clone();
    let delta_papers = total - keep_n;
    let dblp = full.table_mut("dblp").expect("dblp exists");
    for p in &dataset.papers[keep_n..] {
        dblp.insert(vec![
            Value::Int(p.pid as i64),
            Value::str(&p.title),
            Value::Int(p.year),
            Value::str(&p.venue),
        ])
        .expect("append matches schema");
    }
    let links = full.table_mut("dblp_author").expect("dblp_author exists");
    let mut delta_links = 0usize;
    for pa in dataset
        .paper_authors
        .iter()
        .filter(|pa| !kept_pids.contains(&pa.pid))
    {
        links
            .insert(vec![Value::Int(pa.pid as i64), Value::Int(pa.aid as i64)])
            .expect("append matches schema");
        delta_links += 1;
    }

    CorpusSplit {
        base,
        full,
        delta_papers,
        delta_links,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblp_workload::gen::{generate, GeneratorConfig};

    #[test]
    fn split_is_an_append_only_superset() {
        let dataset = generate(&GeneratorConfig::tiny(21));
        let split = split_corpus(&dataset, 0.8);
        assert!(split.delta_papers > 0, "tiny corpus still yields a delta");
        for table in ["dblp", "author", "citation", "dblp_author"] {
            let base = split.base.table(table).unwrap();
            let full = split.full.table(table).unwrap();
            assert!(full.len() >= base.len(), "{table} shrank");
            for id in 0..base.len() {
                let id = relstore::RowId(id);
                assert_eq!(base.row(id), full.row(id), "{table} prefix diverged");
            }
        }
        assert_eq!(
            split.full.table("dblp").unwrap().len(),
            split.base.table("dblp").unwrap().len() + split.delta_papers
        );
        assert_eq!(
            split.full.table("dblp_author").unwrap().len(),
            split.base.table("dblp_author").unwrap().len() + split.delta_links
        );
        // Tables untouched by the delta are identical.
        assert_eq!(
            split.base.table("author").unwrap().len(),
            split.full.table("author").unwrap().len()
        );
        assert_eq!(
            split.base.table("citation").unwrap().len(),
            split.full.table("citation").unwrap().len()
        );
    }
}
