//! One function per table/figure of the evaluation chapter. The
//! `experiments` binary prints these; integration tests assert on their
//! shapes; Criterion benches time their hot paths.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use graphstore::{BatchInserter, BatchStat, PropValue, PropertyGraph};
use hypre_core::prelude::*;
use hypre_topk::threshold_algorithm;
use relstore::Value;

use crate::fixture::Fixture;
use crate::ta_glue::{build_graded_lists, f_and_agg};

// ---------------------------------------------------------------------
// Table 12
// ---------------------------------------------------------------------

/// Table 12: each DEFAULT_VALUE strategy evaluated on a user's stored
/// intensities.
pub fn table12_rows(fx: &Fixture, user: UserId) -> Vec<(&'static str, f64)> {
    let values = fx.graph.user_intensities(user);
    DefaultValueStrategy::table12()
        .into_iter()
        .map(|s| (s.label(), s.seed(&values).value()))
        .collect()
}

// ---------------------------------------------------------------------
// Fig. 13
// ---------------------------------------------------------------------

/// Fig. 13: batched node-insertion timing. The dissertation inserts 7 B
/// nodes in 1 M batches on a server; the reproduction scales the totals
/// down but keeps the batch discipline so the curve's shape (per-batch
/// time roughly flat with a mild upward drift) is comparable.
pub fn fig13_insertion_scaling(total_nodes: usize, batch_size: usize) -> Vec<BatchStat> {
    let mut graph = PropertyGraph::with_capacity(total_nodes);
    let mut inserter = BatchInserter::new(&mut graph, batch_size);
    for i in 0..total_nodes {
        inserter.add_node(
            ["uidIndex"],
            [
                ("uid", PropValue::Int((i % 1000) as i64)),
                ("intensity", PropValue::Float((i % 100) as f64 / 100.0)),
            ],
        );
    }
    let (_, stats) = inserter.finish();
    stats
}

// ---------------------------------------------------------------------
// Fig. 17
// ---------------------------------------------------------------------

/// Fig. 17: the distribution of preferences per user, bucketed for
/// readable output: `(bucket upper bound, number of users)`.
pub fn fig17_distribution(fx: &Fixture, bucket_width: usize) -> Vec<(usize, usize)> {
    let mut buckets: BTreeMap<usize, usize> = BTreeMap::new();
    for (_, n) in fx.workload.preference_counts() {
        let bucket = n.div_ceil(bucket_width.max(1)) * bucket_width.max(1);
        *buckets.entry(bucket).or_default() += 1;
    }
    buckets.into_iter().collect()
}

// ---------------------------------------------------------------------
// Figs. 18–25 (utility / tuples / intensity per combination order)
// ---------------------------------------------------------------------

/// One combination-order series point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComboPoint {
    /// Position in the "combination order" (x-axis of Figs. 18–25).
    pub order: usize,
    /// Tuples returned.
    pub tuples: u64,
    /// Combined intensity.
    pub intensity: f64,
    /// Utility with the paper's 25-tuple page cap (Eq. 5.2, §7.1.1).
    pub utility: f64,
}

/// Figs. 18–25: Partially-Combine-All records grouped by arity (the paper
/// plots arities 2, 5 and 10).
pub fn utility_series(
    fx: &Fixture,
    user: UserId,
    arities: &[usize],
) -> Result<BTreeMap<usize, Vec<ComboPoint>>> {
    let exec = fx.executor();
    let atoms = fx.graph.positive_profile(user);
    let records = partially_combine_all(&atoms, &exec)?;
    let mut out: BTreeMap<usize, Vec<ComboPoint>> = BTreeMap::new();
    for &arity in arities {
        let series: Vec<ComboPoint> = records
            .iter()
            .filter(|r| r.arity() == arity)
            .enumerate()
            .map(|(order, r)| ComboPoint {
                order,
                tuples: r.tuples,
                intensity: r.intensity,
                utility: utility(r.tuples, r.arity(), r.intensity, Some(UTILITY_PAGE_CAP)),
            })
            .collect();
        out.insert(arity, series);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Figs. 26–27 (quantitative preference conversion)
// ---------------------------------------------------------------------

/// Figs. 26–27: the intensity-sorted series before (user-provided
/// quantitative only) and after (all scored nodes) HYPRE conversion.
#[derive(Debug, Clone, PartialEq)]
pub struct ConversionSeries {
    /// Intensities of original quantitative preferences, descending.
    pub from_quantitative_table: Vec<f64>,
    /// Intensities of every scored node in the graph, descending.
    pub from_graph: Vec<f64>,
}

/// Computes the Figs. 26–27 series for one user.
pub fn conversion_series(fx: &Fixture, user: UserId) -> ConversionSeries {
    let mut original: Vec<f64> = fx
        .workload
        .quantitative
        .iter()
        .filter(|p| p.user == user)
        .map(|p| p.intensity.value())
        .collect();
    original.sort_by(|a, b| b.total_cmp(a));
    let graph: Vec<f64> = fx
        .graph
        .profile(user)
        .into_iter()
        .filter_map(|p| p.intensity)
        .collect();
    ConversionSeries {
        from_quantitative_table: original,
        from_graph: graph,
    }
}

// ---------------------------------------------------------------------
// Fig. 28 (coverage)
// ---------------------------------------------------------------------

/// Fig. 28: QT / QL / QT+QL / HYPRE coverage for one user.
pub fn coverage_report(fx: &Fixture, user: UserId) -> Result<CoverageReport> {
    let exec = fx.executor();
    coverage(
        &exec,
        &fx.graph,
        user,
        &fx.workload.quantitative,
        &fx.workload.qualitative,
    )
}

// ---------------------------------------------------------------------
// Figs. 29–31 (Combine-Two)
// ---------------------------------------------------------------------

/// Figs. 29–31 data: Combine-Two records under both semantics, with
/// inapplicable combinations removed (as the paper's plots do).
#[derive(Debug, Clone)]
pub struct CombineTwoFigs {
    /// AND semantics records (applicable only).
    pub and_records: Vec<CombinationRecord>,
    /// AND_OR semantics records (applicable only).
    pub and_or_records: Vec<CombinationRecord>,
}

/// Runs Combine-Two under both semantics.
pub fn combine_two_figs(fx: &Fixture, user: UserId) -> Result<CombineTwoFigs> {
    let exec = fx.executor();
    let atoms = fx.graph.positive_profile(user);
    let mut and_records = combine_two(&atoms, &exec, CombineSemantics::And)?;
    and_records.retain(CombinationRecord::applicable);
    let mut and_or_records = combine_two(&atoms, &exec, CombineSemantics::AndOr)?;
    and_or_records.retain(CombinationRecord::applicable);
    Ok(CombineTwoFigs {
        and_records,
        and_or_records,
    })
}

// ---------------------------------------------------------------------
// Figs. 32–34 (Partially-Combine-All)
// ---------------------------------------------------------------------

/// Figs. 32–34: the full Partially-Combine-All record stream.
pub fn partially_combine_all_figs(fx: &Fixture, user: UserId) -> Result<Vec<CombinationRecord>> {
    let exec = fx.executor();
    let atoms = fx.graph.positive_profile(user);
    partially_combine_all(&atoms, &exec)
}

// ---------------------------------------------------------------------
// Figs. 35–36 (Bias-Random)
// ---------------------------------------------------------------------

/// Figs. 35–36: `(valid, invalid)` counts per seeded run.
pub fn bias_random_figs(fx: &Fixture, user: UserId, runs: u64) -> Result<Vec<(usize, usize)>> {
    let exec = fx.executor();
    let atoms = fx.graph.positive_profile(user);
    let mut out = Vec::with_capacity(runs as usize);
    for seed in 0..runs {
        let stats = bias_random(&atoms, &exec, seed)?;
        out.push((stats.valid, stats.invalid));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Figs. 37–38 (PEPS vs TA)
// ---------------------------------------------------------------------

/// Figs. 37–38 data: the two intensity-ordered tuple series plus the
/// §7.6.2 metrics.
#[derive(Debug, Clone)]
pub struct PepsVsTa {
    /// The intensity threshold used (the user's maximum preference
    /// intensity, as in the paper).
    pub threshold: f64,
    /// PEPS tuples with intensity ≥ threshold, descending.
    pub peps: Vec<(Value, f64)>,
    /// TA tuples with grade ≥ threshold, descending.
    pub ta: Vec<(Value, f64)>,
    /// Definition 21 similarity of the two lists.
    pub similarity: f64,
    /// Definition 22 overlap of the two lists (literal positional form).
    pub overlap: f64,
    /// Tie-aware order agreement of the common tuples (the robust form of
    /// Definition 22; see [`hypre_core::metrics::order_concordance`]).
    pub concordance: f64,
}

/// Runs PEPS over the full hybrid profile against TA over the
/// *quantitative-only* graded lists (§7.6.1 builds TA's lists from the
/// quantitative preference tables — TA "cannot see" the converted
/// qualitative preferences, which is exactly why the dissertation reports
/// only ~37 % similarity while the common tuples keep their relative
/// order). Rankings are compared above the user's top preference
/// intensity, as in Figs. 37–38.
pub fn peps_vs_ta(fx: &Fixture, user: UserId, variant: PepsVariant) -> Result<PepsVsTa> {
    let exec = fx.executor();
    let atoms = fx.graph.positive_profile(user);
    let threshold = atoms.first().map(|a| a.intensity).unwrap_or(0.0);

    let pairs = PairwiseCache::build(&atoms, &exec)?;
    let peps_engine = Peps::new(&atoms, &exec, &pairs, variant);
    let k = 2048; // large enough to exhaust every ranked tuple at our scale
    let mut peps: Vec<(Value, f64)> = peps_engine.top_k(k)?;
    peps.retain(|(_, g)| *g >= threshold);

    // TA sees only the original (positive) quantitative preferences.
    let qt_atoms: Vec<PrefAtom> = fx
        .workload
        .quantitative
        .iter()
        .filter(|p| p.user == user && p.intensity.value() > 0.0)
        .enumerate()
        .map(|(i, p)| PrefAtom::new(i, p.predicate.clone(), p.intensity.value()))
        .collect();
    let lists = build_graded_lists(&exec, &qt_atoms)?;
    let mut ta: Vec<(Value, f64)> = threshold_algorithm(&lists, k, f_and_agg);
    ta.retain(|(_, g)| *g >= threshold);

    let peps_ids: Vec<Value> = peps.iter().map(|(t, _)| t.clone()).collect();
    let ta_ids: Vec<Value> = ta.iter().map(|(t, _)| t.clone()).collect();
    Ok(PepsVsTa {
        threshold,
        similarity: similarity(&peps_ids, &ta_ids),
        overlap: overlap(&peps_ids, &ta_ids),
        concordance: order_concordance(&peps, &ta),
        peps,
        ta,
    })
}

/// The §7.6.3 sanity check: on a quantitative-only graph PEPS and TA must
/// agree exactly (100 % similarity and overlap). Returns
/// `(similarity, overlap)`.
pub fn qt_only_equivalence(fx: &Fixture, user: UserId) -> Result<(f64, f64)> {
    let quants: Vec<QuantitativePref> = fx
        .workload
        .quantitative
        .iter()
        .filter(|p| p.user == user && p.intensity.value() > 0.0)
        .cloned()
        .collect();
    let mut graph = HypreGraph::new();
    graph.load(&quants, &[])?;
    let atoms = graph.positive_profile(user);
    let exec = fx.executor();
    let pairs = PairwiseCache::build(&atoms, &exec)?;
    let peps = Peps::new(&atoms, &exec, &pairs, PepsVariant::Complete).top_k(2048)?;
    let lists = build_graded_lists(&exec, &atoms)?;
    let ta = threshold_algorithm(&lists, 2048, f_and_agg);
    let peps_ids: Vec<Value> = peps.iter().map(|(t, _)| t.clone()).collect();
    let ta_ids: Vec<Value> = ta.iter().map(|(t, _)| t.clone()).collect();
    Ok((similarity(&peps_ids, &ta_ids), overlap(&peps_ids, &ta_ids)))
}

// ---------------------------------------------------------------------
// Figs. 39–40 (PEPS latency vs K)
// ---------------------------------------------------------------------

/// One latency measurement.
#[derive(Debug, Clone, Copy)]
pub struct LatencyPoint {
    /// The K of Top-K.
    pub k: usize,
    /// Approximate PEPS over the full hybrid profile.
    pub approximate: Duration,
    /// Complete PEPS over the full hybrid profile.
    pub complete: Duration,
    /// Approximate PEPS over the quantitative-only profile.
    pub quantitative_only: Duration,
}

/// Figs. 39–40: mean PEPS latency for each K, averaged over `reps` runs
/// (the paper averages 10 runs per K). Pair-cache build time is excluded,
/// as in the paper — the cache is maintained with the graph, not per
/// query.
pub fn peps_latency(
    fx: &Fixture,
    user: UserId,
    ks: &[usize],
    reps: usize,
) -> Result<Vec<LatencyPoint>> {
    let exec = fx.executor();
    let atoms = fx.graph.positive_profile(user);
    let pairs = PairwiseCache::build(&atoms, &exec)?;

    let qt_quants: Vec<QuantitativePref> = fx
        .workload
        .quantitative
        .iter()
        .filter(|p| p.user == user && p.intensity.value() > 0.0)
        .cloned()
        .collect();
    let mut qt_graph = HypreGraph::new();
    qt_graph.load(&qt_quants, &[])?;
    let qt_atoms = qt_graph.positive_profile(user);
    let qt_pairs = PairwiseCache::build(&qt_atoms, &exec)?;

    let mut out = Vec::with_capacity(ks.len());
    for &k in ks {
        let mut approx = Duration::ZERO;
        let mut complete = Duration::ZERO;
        let mut qt_only = Duration::ZERO;
        for _ in 0..reps.max(1) {
            let t = Instant::now();
            let _ = Peps::new(&atoms, &exec, &pairs, PepsVariant::Approximate).top_k(k)?;
            approx += t.elapsed();
            let t = Instant::now();
            let _ = Peps::new(&atoms, &exec, &pairs, PepsVariant::Complete).top_k(k)?;
            complete += t.elapsed();
            let t = Instant::now();
            let _ = Peps::new(&qt_atoms, &exec, &qt_pairs, PepsVariant::Approximate).top_k(k)?;
            qt_only += t.elapsed();
        }
        let n = reps.max(1) as u32;
        out.push(LatencyPoint {
            k,
            approximate: approx / n,
            complete: complete / n,
            quantitative_only: qt_only / n,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fx() -> Fixture {
        Fixture::small()
    }

    #[test]
    fn table12_has_seven_rows_in_range() {
        let f = fx();
        let rows = table12_rows(&f, f.rich_user);
        assert_eq!(rows.len(), 7);
        for (label, v) in rows {
            assert!((-1.0..=1.0).contains(&v), "{label}: {v}");
        }
    }

    #[test]
    fn fig13_batches_cover_total() {
        let stats = fig13_insertion_scaling(2500, 1000);
        assert_eq!(stats.len(), 3);
        assert_eq!(stats.iter().map(|s| s.nodes).sum::<usize>(), 2500);
        assert_eq!(stats.last().unwrap().total_nodes_after, 2500);
    }

    #[test]
    fn fig17_buckets_sum_to_users() {
        let f = fx();
        let dist = fig17_distribution(&f, 10);
        let users: usize = dist.iter().map(|(_, n)| n).sum();
        assert_eq!(users, f.workload.preference_counts().len());
    }

    #[test]
    fn utility_series_has_pairs() {
        let f = fx();
        let series = utility_series(&f, f.rich_user, &[2, 5]).unwrap();
        let twos = &series[&2];
        assert!(!twos.is_empty(), "arity-2 combinations exist");
        for p in twos {
            assert!(p.utility <= 25.0 / 2.0, "page cap bounds utility");
        }
    }

    #[test]
    fn conversion_grows_the_profile() {
        let f = fx();
        let c = conversion_series(&f, f.rich_user);
        assert!(
            c.from_graph.len() > c.from_quantitative_table.len(),
            "HYPRE scores more predicates than the original table ({} vs {})",
            c.from_graph.len(),
            c.from_quantitative_table.len()
        );
        assert!(
            c.from_graph.windows(2).all(|w| w[0] >= w[1]),
            "descending order"
        );
    }

    #[test]
    fn coverage_hypre_dominates() {
        let f = fx();
        for user in f.study_users() {
            let r = coverage_report(&f, user).unwrap();
            assert!(r.hypre >= r.combined, "{user}: {r:?}");
            assert!(r.combined >= r.quantitative.max(r.qualitative));
        }
    }

    #[test]
    fn qt_only_peps_equals_ta_exactly() {
        let f = fx();
        for user in f.study_users() {
            let (sim, ovl) = qt_only_equivalence(&f, user).unwrap();
            assert!((sim - 1.0).abs() < 1e-12, "{user}: similarity {sim}");
            assert!((ovl - 1.0).abs() < 1e-12, "{user}: overlap {ovl}");
        }
    }

    #[test]
    fn hybrid_peps_covers_at_least_ta_above_threshold() {
        let f = fx();
        let r = peps_vs_ta(&f, f.rich_user, PepsVariant::Complete).unwrap();
        // The dissertation's two headline findings (§7.6.3): PEPS covers
        // at least as many tuples as TA (it sees the converted qualitative
        // preferences TA cannot), and the lists are only partially similar.
        assert!(
            r.peps.len() >= r.ta.len(),
            "PEPS ({}) finds at least as many tuples above {} as TA ({})",
            r.peps.len(),
            r.threshold,
            r.ta.len()
        );
        assert!((0.0..=1.0).contains(&r.similarity));
        assert!((0.0..=1.0).contains(&r.overlap));
    }

    #[test]
    fn latency_points_cover_requested_ks() {
        let f = fx();
        let pts = peps_latency(&f, f.modest_user, &[10, 50], 2).unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].k, 10);
        assert!(pts.iter().all(|p| p.complete >= Duration::ZERO));
    }
}
