//! The standard experiment fixture: one seeded corpus, its extracted
//! workload, the loaded database and the ingested HYPRE graph, plus the
//! two designated study users.
//!
//! The dissertation reports every per-user experiment for `uid=2` (a rich
//! profile, ~170 graph preferences) and `uid=38437` (a modest one, ~50).
//! The fixture picks analogous users from the synthetic corpus: the user
//! with the most extracted preferences, and a mid-tail user.

use dblp_workload::{extract, gen, load, DblpDataset, ExtractedWorkload};
use hypre_core::prelude::*;
use relstore::Database;

/// A fully prepared experiment environment.
pub struct Fixture {
    /// The synthetic corpus.
    pub dataset: DblpDataset,
    /// The extracted preferences (the original `quantitative_pref` /
    /// `qualitative_pref` tables).
    pub workload: ExtractedWorkload,
    /// The loaded relational database.
    pub db: Database,
    /// The ingested HYPRE graph.
    pub graph: HypreGraph,
    /// Load timing/conflict report (Table 11).
    pub ingest: IngestReport,
    /// The `uid=2` analogue: richest profile.
    pub rich_user: UserId,
    /// The `uid=38437` analogue: mid-tail profile.
    pub modest_user: UserId,
}

impl Fixture {
    /// The standard corpus (4 000 papers) used by the `experiments` binary.
    pub fn standard() -> Self {
        Fixture::build(gen::GeneratorConfig::default())
    }

    /// A small corpus for fast benches and integration tests.
    pub fn small() -> Self {
        Fixture::build(gen::GeneratorConfig {
            papers: 1200,
            authors: 500,
            venues: 30,
            ..gen::GeneratorConfig::default()
        })
    }

    /// A fixture over an `n`-paper corpus with proportionally scaled
    /// author and venue populations — the 2k/20k scaling axis of the
    /// bitset-vs-hashset benches.
    pub fn papers(n: usize) -> Self {
        Fixture::build(gen::GeneratorConfig {
            papers: n,
            authors: (n * 2 / 5).max(50),
            venues: (n / 65).clamp(8, 120),
            ..gen::GeneratorConfig::default()
        })
    }

    /// Builds a fixture from a generator configuration.
    pub fn build(config: gen::GeneratorConfig) -> Self {
        let dataset = gen::generate(&config);
        // A small conflict-injection rate exercises the CYCLE/DISCARD
        // machinery at workload scale (clean §6.2 extraction can never
        // conflict; see `ExtractionConfig::conflict_rate`).
        let workload = extract::extract(
            &dataset,
            &extract::ExtractionConfig {
                conflict_rate: 0.03,
                ..extract::ExtractionConfig::default()
            },
        );
        let db = load::load(&dataset).expect("schema is valid");
        let mut graph = HypreGraph::new();
        let ingest = graph
            .load(&workload.quantitative, &workload.qualitative)
            .expect("extracted preferences are valid");
        let (rich_user, modest_user) = pick_users(&workload);
        Fixture {
            dataset,
            workload,
            db,
            graph,
            ingest,
            rich_user,
            modest_user,
        }
    }

    /// A fresh executor over the fixture database with the paper's base
    /// query.
    pub fn executor(&self) -> Executor<'_> {
        Executor::new(&self.db, BaseQuery::dblp())
    }

    /// The two study users, in `(rich, modest)` order.
    pub fn study_users(&self) -> [UserId; 2] {
        [self.rich_user, self.modest_user]
    }
}

/// Picks the richest user and a mid-tail user with a meaningful profile.
fn pick_users(workload: &ExtractedWorkload) -> (UserId, UserId) {
    let counts = workload.preference_counts();
    // Study users must have a non-saturated top preference: a profile whose
    // strongest intensity is exactly 1.0 turns every intensity figure into
    // a flat line at 1.0 (the threshold filter of Figs. 37–38 then matches
    // only the 1.0-scoring tuples on both sides).
    let max_intensity = |uid: u64| {
        workload
            .quantitative
            .iter()
            .filter(|p| p.user.0 == uid)
            .map(|p| p.intensity.value())
            .fold(0.0f64, f64::max)
    };
    let rich = counts
        .iter()
        .filter(|(uid, _)| max_intensity(**uid) < 0.95)
        .max_by_key(|(uid, n)| (**n, std::cmp::Reverse(**uid)))
        .or_else(|| counts.iter().max_by_key(|(_, n)| **n))
        .map(|(uid, _)| UserId(*uid))
        .expect("workload has users");
    // Mid-tail: the user closest to 40 % of the richest count, with at
    // least 8 preferences so every experiment has material to work with.
    let rich_n = counts[&rich.0];
    let target = (rich_n * 2 / 5).max(8);
    // Per user: predicates that only appear on the qualitative side — each
    // becomes a *new* scored node during ingest, which is what the
    // conversion and coverage figures measure. The modest user must gain
    // some, or those figures degenerate to flat lines.
    let mut quantitative_preds: std::collections::HashMap<u64, std::collections::HashSet<String>> =
        std::collections::HashMap::new();
    for p in &workload.quantitative {
        quantitative_preds
            .entry(p.user.0)
            .or_default()
            .insert(p.predicate.canonical());
    }
    let mut conversion_growth: std::collections::HashMap<u64, usize> =
        std::collections::HashMap::new();
    for p in &workload.qualitative {
        let known = quantitative_preds.entry(p.user.0).or_default();
        for side in [&p.left, &p.right] {
            let key = side.canonical();
            if !known.contains(&key) {
                known.insert(key);
                *conversion_growth.entry(p.user.0).or_default() += 1;
            }
        }
    }
    let modest = counts
        .iter()
        .filter(|(uid, _)| **uid != rich.0)
        .filter(|(_, n)| **n >= 8)
        .filter(|(uid, _)| max_intensity(**uid) < 0.95)
        .filter(|(uid, _)| conversion_growth.get(*uid).copied().unwrap_or(0) >= 5)
        .min_by_key(|(_, n)| n.abs_diff(target))
        .map(|(uid, _)| UserId(*uid))
        .unwrap_or(rich);
    (rich, modest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fixture_is_coherent() {
        let f = Fixture::small();
        assert!(f.graph.node_count() > 0);
        assert!(f.ingest.quantitative > 0);
        assert!(f.ingest.qualitative > 0);
        assert_ne!(f.rich_user, f.modest_user);
        f.graph.check_invariants().unwrap();
        // the rich user has a usable positive profile
        let profile = f.graph.positive_profile(f.rich_user);
        assert!(
            profile.len() >= 8,
            "rich profile has {} atoms",
            profile.len()
        );
        let modest = f.graph.positive_profile(f.modest_user);
        assert!(!modest.is_empty());
        assert!(profile.len() >= modest.len());
    }

    #[test]
    fn fixtures_are_reproducible() {
        let a = Fixture::small();
        let b = Fixture::small();
        assert_eq!(a.rich_user, b.rich_user);
        assert_eq!(a.modest_user, b.modest_user);
        assert_eq!(a.workload.quantitative.len(), b.workload.quantitative.len());
    }
}
