//! The pure-bitmap (PR 1) set-algebra generation, preserved.
//!
//! PR 2 made the executor's tuple sets *adaptive* ([`TupleSet`]): sorted
//! `u32` arrays below the cardinality threshold, packed-word bitmaps
//! above it. This module keeps the intermediate generation — every set a
//! plain [`BitSet`] regardless of cardinality — alive behind the same
//! interned-id space, so the three-way `adaptive-vs-bitset-vs-hashset`
//! benches and the differential equivalence tests can compare all three
//! generations on identical inputs:
//!
//! * seed — `HashSet<Value>` algebra ([`crate::baseline`]);
//! * PR 1 — dense `BitSet` algebra (this module);
//! * PR 2 — adaptive `TupleSet` algebra (`hypre_core` proper).
//!
//! [`BitsetAlgebra`] materialises per-predicate `Rc<BitSet>`s by fetching
//! the executor's adaptive set once (memoised; no extra SQL) and
//! re-packing it densely, so both engines agree on tuple ids and the
//! comparison isolates the container representation. [`BitsetPeps`] is
//! the PR 1 PEPS engine verbatim — per-round pair seeding, depth-first
//! expansion with one incremental word-AND per node, dense `Vec<f64>`
//! ranking and the same ordering and early-termination rules — and must
//! stay byte-identical to [`Peps`].
//!
//! **Frozen-control contract (PR 3+).** The bench-regression guard
//! normalises headline timings by this engine, so it must keep measuring
//! the *same* work run over run: it calls only `BitSet`'s original plain
//! word-loop methods (`and`/`or`/`and_not`/`and_count`), never the PR 4
//! SIMD-width `*_wide` kernels, and it predates the PR 4 run container,
//! clone-free COW expansion and packed dedup keys by design — those land
//! in the adaptive engine this module exists to measure against.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use hypre_core::prelude::*;
use relstore::{Predicate, Value};

/// A memoising pure-`BitSet` evaluator sharing an [`Executor`]'s interned
/// id space — the PR 1 representation, preserved.
pub struct BitsetAlgebra<'a, 'db> {
    exec: &'a Executor<'db>,
    cache: RefCell<HashMap<String, Rc<BitSet>>>,
}

impl<'a, 'db> BitsetAlgebra<'a, 'db> {
    /// Wraps an executor (for its memoised tuple sets and interner).
    pub fn new(exec: &'a Executor<'db>) -> Self {
        BitsetAlgebra {
            exec,
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// The predicate's tuple set as a dense bitmap over the executor's
    /// interned ids (one adaptive-set fetch + densification, memoised).
    pub fn tuple_set(&self, unit: &Predicate) -> Result<Rc<BitSet>> {
        let key = unit.canonical();
        if let Some(set) = self.cache.borrow().get(&key) {
            return Ok(Rc::clone(set));
        }
        let set = Rc::new(self.exec.tuple_set(unit)?.to_bitset());
        self.cache.borrow_mut().insert(key, Rc::clone(&set));
        Ok(set)
    }

    /// Pre-warms the memo cache for a profile (kept outside timed bench
    /// regions so the comparison isolates set algebra from SQL).
    pub fn warm(&self, atoms: &[PrefAtom]) -> Result<()> {
        for a in atoms {
            self.tuple_set(&a.predicate)?;
        }
        Ok(())
    }

    /// PR 1's AND evaluation: smallest-first word-AND accumulation.
    pub fn and_set(&self, units: &[&Predicate]) -> Result<BitSet> {
        let mut sets = Vec::with_capacity(units.len());
        for u in units {
            sets.push(self.tuple_set(u)?);
        }
        sets.sort_by_key(|s| s.count());
        let Some(first) = sets.first() else {
            return Ok(BitSet::new());
        };
        let mut acc: BitSet = (**first).clone();
        for s in &sets[1..] {
            acc.and_assign(s);
            if acc.is_empty() {
                break;
            }
        }
        Ok(acc)
    }

    /// PR 1's mixed-clause evaluation: per-group word-OR unions, then
    /// smallest-first word-AND intersection.
    pub fn mixed_set(&self, groups: &[Vec<&Predicate>]) -> Result<BitSet> {
        let mut group_sets: Vec<BitSet> = Vec::with_capacity(groups.len());
        for group in groups {
            let mut union = BitSet::new();
            for u in group {
                let set = self.tuple_set(u)?;
                union.or_assign(&set);
            }
            group_sets.push(union);
        }
        group_sets.sort_by_key(BitSet::count);
        let Some(first) = group_sets.first() else {
            return Ok(BitSet::new());
        };
        let mut acc = first.clone();
        for s in &group_sets[1..] {
            acc.and_assign(s);
            if acc.is_empty() {
                break;
            }
        }
        Ok(acc)
    }

    /// PR 1's pairwise-cache build: per-pair word-AND popcounts. Returns
    /// `(i, j, count)` triples in `(i, j)` order.
    pub fn pairwise_counts(&self, atoms: &[PrefAtom]) -> Result<Vec<(usize, usize, u64)>> {
        let mut sets = Vec::with_capacity(atoms.len());
        for a in atoms {
            sets.push(self.tuple_set(&a.predicate)?);
        }
        let mut out = Vec::with_capacity(atoms.len() * atoms.len().saturating_sub(1) / 2);
        for ai in 0..atoms.len() {
            for bj in ai + 1..atoms.len() {
                out.push((ai, bj, sets[ai].and_count(&sets[bj]) as u64));
            }
        }
        Ok(out)
    }

    /// PR 1's dense scorer: residual accumulation in a `Vec<f64>` indexed
    /// by tuple id, touched ids tracked in a bitmap.
    pub fn score_tuples(&self, atoms: &[PrefAtom]) -> Result<Vec<(Value, f64)>> {
        let mut residual: Vec<f64> = Vec::new();
        let mut touched = BitSet::new();
        for atom in atoms {
            let set = self.tuple_set(&atom.predicate)?;
            for id in set.iter() {
                let idx = id as usize;
                if idx >= residual.len() {
                    residual.resize(idx + 1, 1.0);
                }
                residual[idx] *= 1.0 - atom.intensity;
                touched.insert(id);
            }
        }
        let mut out: Vec<(Value, f64)> = touched
            .iter()
            .map(|id| (self.exec.tuple_value(id), 1.0 - residual[id as usize]))
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        Ok(out)
    }
}

/// The PR 1 dense PEPS engine over pure bitmaps — byte-identical output to
/// [`Peps`], kept for three-way benchmarking and differential testing.
pub struct BitsetPeps<'x, 'a, 'db> {
    atoms: &'x [PrefAtom],
    algebra: &'x BitsetAlgebra<'a, 'db>,
    pairs: &'x PairwiseCache,
    variant: PepsVariant,
}

impl<'x, 'a, 'db> BitsetPeps<'x, 'a, 'db> {
    /// Creates the engine over a profile, a bitmap algebra and the
    /// (algebra-independent) pairwise cache.
    pub fn new(
        atoms: &'x [PrefAtom],
        algebra: &'x BitsetAlgebra<'a, 'db>,
        pairs: &'x PairwiseCache,
        variant: PepsVariant,
    ) -> Self {
        BitsetPeps {
            atoms,
            algebra,
            pairs,
            variant,
        }
    }

    /// PR 1's `ordered_combinations`: every applicable combination of
    /// every round, sorted by descending combined intensity.
    pub fn ordered_combinations(&self) -> Result<Vec<CombinationRecord>> {
        let sets = self.atom_sets()?;
        let mut emitted: HashSet<Vec<usize>> = HashSet::new();
        let mut order: Vec<RoundCombo> = Vec::new();
        for s in 0..self.atoms.len() {
            self.run_round(s, &sets, &mut emitted, &mut order)?;
        }
        sort_order(&mut order);
        Ok(order
            .into_iter()
            .map(|c| CombinationRecord {
                predicate: Predicate::all(
                    c.members.iter().map(|&m| self.atoms[m].predicate.clone()),
                ),
                members: c.members,
                intensity: c.intensity,
                tuples: c.tuples,
            })
            .collect())
    }

    /// PR 1's `top_k`: dense `Vec<f64>` ranking indexed by tuple id, same
    /// rounds, sorting and early-termination rule as the adaptive engine.
    pub fn top_k(&self, k: usize) -> Result<Vec<(Value, f64)>> {
        assert!(k > 0, "k must be positive");
        let sets = self.atom_sets()?;
        let mut emitted: HashSet<Vec<usize>> = HashSet::new();
        let mut ranked: Vec<f64> = Vec::new();
        let mut n_ranked = 0usize;
        for s in 0..self.atoms.len() {
            let mut round: Vec<RoundCombo> = Vec::new();
            self.run_round(s, &sets, &mut emitted, &mut round)?;
            sort_order(&mut round);
            for combo in &round {
                if combo.tuples == 0 {
                    continue;
                }
                for id in combo.set.iter() {
                    let idx = id as usize;
                    if idx >= ranked.len() {
                        ranked.resize(idx + 1, f64::NEG_INFINITY);
                    }
                    if ranked[idx] == f64::NEG_INFINITY {
                        n_ranked += 1;
                        ranked[idx] = combo.intensity;
                    } else if combo.intensity > ranked[idx] {
                        ranked[idx] = combo.intensity;
                    }
                }
            }
            let threshold = self.atoms[s].intensity;
            if n_ranked >= k && kth_best(&ranked, k) >= threshold {
                break;
            }
        }
        let mut out: Vec<(Value, f64)> = ranked
            .iter()
            .enumerate()
            .filter(|(_, &score)| score > f64::NEG_INFINITY)
            .map(|(id, &score)| (self.algebra.exec.tuple_value(id as u32), score))
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out.truncate(k);
        Ok(out)
    }

    fn run_round(
        &self,
        s: usize,
        sets: &[Rc<BitSet>],
        emitted: &mut HashSet<Vec<usize>>,
        out: &mut Vec<RoundCombo>,
    ) -> Result<()> {
        let threshold = self.atoms[s].intensity;
        let seeds: Vec<(usize, usize, f64)> = self
            .pairs
            .entries()
            .iter()
            .filter(|e| e.applicable())
            .filter(|e| self.admits(e.i, e.j, e.intensity, threshold))
            .map(|e| (e.i, e.j, e.intensity))
            .collect();
        for (i, j, intensity) in seeds {
            let members = vec![i, j];
            if !emitted.insert(members.clone()) {
                continue;
            }
            self.expand(members, intensity, sets[i].and(&sets[j]), sets, out);
        }
        let singleton = vec![s];
        if !emitted.contains(&singleton) {
            let set = Rc::clone(&sets[s]);
            let tuples = set.count() as u64;
            if tuples > 0 {
                emitted.insert(singleton.clone());
                out.push(RoundCombo {
                    members: singleton,
                    intensity: self.atoms[s].intensity,
                    tuples,
                    set,
                });
            }
        }
        Ok(())
    }

    fn admits(&self, i: usize, j: usize, pair_intensity: f64, threshold: f64) -> bool {
        if pair_intensity > threshold {
            return true;
        }
        match self.variant {
            PepsVariant::Approximate => false,
            PepsVariant::Complete => {
                let mut residual = 1.0 - pair_intensity;
                for (m, atom) in self.atoms.iter().enumerate() {
                    if m != i && m != j && atom.intensity > 0.0 {
                        residual *= 1.0 - atom.intensity;
                    }
                }
                1.0 - residual > threshold
            }
        }
    }

    fn expand(
        &self,
        members: Vec<usize>,
        intensity: f64,
        set: BitSet,
        sets: &[Rc<BitSet>],
        out: &mut Vec<RoundCombo>,
    ) {
        let set: Rc<BitSet> = Rc::new(set);
        out.push(RoundCombo {
            members: members.clone(),
            intensity,
            tuples: set.count() as u64,
            set: Rc::clone(&set),
        });
        let last = *members.last().expect("combinations are non-empty");
        let candidates: Vec<usize> = self.pairs.pairs_from(last).map(|e| e.j).collect();
        for m in candidates {
            let sm = &sets[m];
            if !set.intersects(sm) {
                continue;
            }
            let mut ext_members = members.clone();
            ext_members.push(m);
            let ext_intensity = f_and(intensity, self.atoms[m].intensity);
            self.expand(ext_members, ext_intensity, set.and(sm), sets, out);
        }
    }

    fn atom_sets(&self) -> Result<Vec<Rc<BitSet>>> {
        self.atoms
            .iter()
            .map(|a| self.algebra.tuple_set(&a.predicate))
            .collect()
    }
}

/// A round combination carrying its dense tuple set (mirror of the
/// engine-internal struct of both dense generations).
struct RoundCombo {
    members: Vec<usize>,
    intensity: f64,
    tuples: u64,
    set: Rc<BitSet>,
}

fn sort_order(order: &mut [RoundCombo]) {
    order.sort_by(|a, b| {
        b.intensity
            .total_cmp(&a.intensity)
            .then_with(|| a.members.len().cmp(&b.members.len()))
            .then_with(|| a.members.cmp(&b.members))
    });
}

fn kth_best(ranked: &[f64], k: usize) -> f64 {
    let mut scores: Vec<f64> = ranked
        .iter()
        .copied()
        .filter(|&s| s > f64::NEG_INFINITY)
        .collect();
    if scores.len() < k {
        return f64::NEG_INFINITY;
    }
    let (_, kth, _) = scores.select_nth_unstable_by(k - 1, |a, b| b.total_cmp(a));
    *kth
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_algebra_matches_adaptive_engine_on_the_fixture() {
        let fx = crate::Fixture::small();
        let exec = fx.executor();
        let dense = BitsetAlgebra::new(&exec);
        let atoms: Vec<PrefAtom> = fx
            .graph
            .positive_profile(fx.rich_user)
            .into_iter()
            .take(10)
            .collect();
        assert!(atoms.len() >= 4, "profile too small for the test");

        for a in &atoms {
            let adaptive = exec.tuple_set(&a.predicate).unwrap();
            let bits = dense.tuple_set(&a.predicate).unwrap();
            assert_eq!(adaptive.count(), bits.count());
            assert_eq!(
                adaptive.iter().collect::<Vec<_>>(),
                bits.iter().collect::<Vec<_>>(),
                "ids for {}",
                a.predicate
            );
        }

        let units: Vec<&Predicate> = atoms.iter().take(3).map(|a| &a.predicate).collect();
        assert_eq!(
            exec.and_set(&units).unwrap().iter().collect::<Vec<_>>(),
            dense.and_set(&units).unwrap().iter().collect::<Vec<_>>()
        );

        let cache = PairwiseCache::build(&atoms, &exec).unwrap();
        for (entry, (i, j, count)) in cache
            .entries()
            .iter()
            .zip(dense.pairwise_counts(&atoms).unwrap())
        {
            assert_eq!((entry.i, entry.j, entry.count), (i, j, count));
        }
    }

    #[test]
    fn bitset_peps_is_byte_identical_to_adaptive_peps() {
        let fx = crate::Fixture::small();
        let exec = fx.executor();
        let dense = BitsetAlgebra::new(&exec);
        let atoms: Vec<PrefAtom> = fx
            .graph
            .positive_profile(fx.rich_user)
            .into_iter()
            .take(12)
            .collect();
        let pairs = PairwiseCache::build(&atoms, &exec).unwrap();
        for variant in [PepsVariant::Complete, PepsVariant::Approximate] {
            let adaptive = Peps::new(&atoms, &exec, &pairs, variant);
            let bitmap = BitsetPeps::new(&atoms, &dense, &pairs, variant);
            assert_eq!(
                adaptive.ordered_combinations().unwrap(),
                bitmap.ordered_combinations().unwrap()
            );
            for k in [1usize, 5, 50, 500] {
                assert_eq!(
                    adaptive.top_k(k).unwrap(),
                    bitmap.top_k(k).unwrap(),
                    "k={k}"
                );
            }
        }
    }
}
