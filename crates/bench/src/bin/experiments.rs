//! Regenerates every table and figure of the dissertation's evaluation
//! chapter against the standard seeded fixture.
//!
//! ```text
//! experiments [--small] [SECTION ...]
//! ```
//!
//! Sections: `table10 table11 table12 fig13 fig17 fig18 fig20_25 fig26_27
//! fig28 fig29_31 fig32_34 fig35_36 fig37_38 fig39_40`. With no section
//! arguments, everything runs (the full standard corpus takes a couple of
//! minutes; `--small` uses the reduced corpus).

use std::collections::HashSet;

use dblp_workload::table10;
use hypre_bench::experiments::*;
use hypre_bench::report::{banner, f4, ms, render_series, TextTable};
use hypre_bench::Fixture;
use hypre_core::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    let sections: HashSet<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let want = |s: &str| sections.is_empty() || sections.contains(s);

    eprintln!(
        "building {} fixture (seeded synthetic DBLP + extraction + graph ingest)…",
        if small { "small" } else { "standard" }
    );
    let fx = if small {
        Fixture::small()
    } else {
        Fixture::standard()
    };
    eprintln!(
        "fixture ready: {} papers, {} users with preferences, study users {} / {}",
        fx.dataset.papers.len(),
        fx.workload.preference_counts().len(),
        fx.rich_user,
        fx.modest_user
    );

    if want("table10") {
        run_table10(&fx);
    }
    if want("table11") {
        run_table11(&fx);
    }
    if want("table12") {
        run_table12(&fx);
    }
    if want("fig13") {
        run_fig13(small);
    }
    if want("fig17") {
        run_fig17(&fx);
    }
    if want("fig18") {
        run_fig18_19(&fx);
    }
    if want("fig20_25") {
        run_fig20_25(&fx);
    }
    if want("fig26_27") {
        run_fig26_27(&fx);
    }
    if want("fig28") {
        run_fig28(&fx);
    }
    if want("fig29_31") {
        run_fig29_31(&fx);
    }
    if want("fig32_34") {
        run_fig32_34(&fx);
    }
    if want("fig35_36") {
        run_fig35_36(&fx);
    }
    if want("fig37_38") {
        run_fig37_38(&fx);
    }
    if want("fig39_40") {
        run_fig39_40(&fx, small);
    }
}

fn run_table10(fx: &Fixture) {
    banner("Table 10 — Statistics for the DBLP database");
    let mut t = TextTable::new(&["Relation", "Arity", "Cardinality", "Secondary"]);
    for row in table10(&fx.dataset, &fx.workload) {
        t.row(vec![
            row.relation.to_owned(),
            row.arity.to_string(),
            row.cardinality.to_string(),
            row.secondary
                .map(|(label, n)| format!("{n} {label}"))
                .unwrap_or_default(),
        ]);
    }
    print!("{}", t.render());
}

fn run_table11(fx: &Fixture) {
    banner("Table 11 — Insertion time (batched quantitative vs per-transaction qualitative)");
    let mut t = TextTable::new(&["Insertion type", "Preferences", "Time", "Prefs/sec"]);
    let rate = |n: usize, d: std::time::Duration| {
        if d.as_secs_f64() > 0.0 {
            format!("{:.0}", n as f64 / d.as_secs_f64())
        } else {
            "-".into()
        }
    };
    t.row(vec![
        "Quantitative (batch)".into(),
        fx.ingest.quantitative.to_string(),
        ms(fx.ingest.quantitative_time),
        rate(fx.ingest.quantitative, fx.ingest.quantitative_time),
    ]);
    t.row(vec![
        "Qualitative (transactional)".into(),
        fx.ingest.qualitative.to_string(),
        ms(fx.ingest.qualitative_time),
        rate(fx.ingest.qualitative, fx.ingest.qualitative_time),
    ]);
    print!("{}", t.render());
    println!(
        "conflicts: {} CYCLE edges, {} DISCARD edges",
        fx.ingest.cycle_edges, fx.ingest.discard_edges
    );
}

fn run_table12(fx: &Fixture) {
    banner("Table 12 — Possible DEFAULT_VALUEs");
    for user in fx.study_users() {
        let mut t = TextTable::new(&["Strategy", "Seed value"]);
        for (label, v) in table12_rows(fx, user) {
            t.row(vec![label.to_owned(), f4(v)]);
        }
        println!("{user}:");
        print!("{}", t.render());
    }
}

fn run_fig13(small: bool) {
    banner("Fig. 13 — Node insertion time vs graph size (scaled)");
    let (total, batch) = if small {
        (200_000, 20_000)
    } else {
        (1_000_000, 100_000)
    };
    let stats = fig13_insertion_scaling(total, batch);
    let series: Vec<(f64, f64)> = stats
        .iter()
        .map(|s| {
            (
                s.total_nodes_after as f64 / 1000.0,
                s.elapsed.as_secs_f64() * 1e3,
            )
        })
        .collect();
    print!(
        "{}",
        render_series("(k nodes inserted, batch time ms)", &series)
    );
}

fn run_fig17(fx: &Fixture) {
    banner("Fig. 17 — Distribution of number of preferences per user");
    let mut t = TextTable::new(&["Preferences (≤)", "Users"]);
    for (bucket, users) in fig17_distribution(fx, 10) {
        t.row(vec![bucket.to_string(), users.to_string()]);
    }
    print!("{}", t.render());
}

fn run_fig18_19(fx: &Fixture) {
    banner("Figs. 18–19 — Utility value per combination order (arity 2/5/10)");
    for user in fx.study_users() {
        println!("{user}:");
        let series = utility_series(fx, user, &[2, 5, 10]).expect("profile runs");
        for (arity, points) in series {
            let pts: Vec<(f64, f64)> = points.iter().map(|p| (p.order as f64, p.utility)).collect();
            print!("{}", render_series(&format!("{arity} preferences"), &pts));
        }
    }
}

fn run_fig20_25(fx: &Fixture) {
    banner("Figs. 20–25 — #tuples and combined intensity per combination (arity 2/5/10)");
    let user = fx.rich_user;
    println!("{user}:");
    let series = utility_series(fx, user, &[2, 5, 10]).expect("profile runs");
    for (arity, points) in series {
        let tuples: Vec<(f64, f64)> = points
            .iter()
            .map(|p| (p.order as f64, p.tuples as f64))
            .collect();
        let intensity: Vec<(f64, f64)> = points
            .iter()
            .map(|p| (p.order as f64, p.intensity))
            .collect();
        print!(
            "{}",
            render_series(&format!("arity {arity}: #tuples"), &tuples)
        );
        print!(
            "{}",
            render_series(&format!("arity {arity}: intensity"), &intensity)
        );
    }
}

fn run_fig26_27(fx: &Fixture) {
    banner("Figs. 26–27 — Quantitative preferences before vs after HYPRE conversion");
    for user in fx.study_users() {
        let c = conversion_series(fx, user);
        println!(
            "{user}: {} quantitative-table preferences → {} scored graph nodes",
            c.from_quantitative_table.len(),
            c.from_graph.len()
        );
    }
}

fn run_fig28(fx: &Fixture) {
    banner("Fig. 28 — Coverage over the dataset (QT / QL / QT+QL / HYPRE)");
    let mut t = TextTable::new(&["User", "QT", "QL", "QT+QL", "HYPRE", "gain vs QT"]);
    for user in fx.study_users() {
        let r = coverage_report(fx, user).expect("coverage runs");
        t.row(vec![
            user.to_string(),
            r.quantitative.to_string(),
            r.qualitative.to_string(),
            r.combined.to_string(),
            r.hypre.to_string(),
            format!("{:.0}%", r.gain_over_quantitative() * 100.0),
        ]);
    }
    print!("{}", t.render());
}

fn run_fig29_31(fx: &Fixture) {
    banner("Figs. 29–31 — Combine-Two intensity variation (AND vs AND_OR)");
    for user in fx.study_users() {
        let figs = combine_two_figs(fx, user).expect("combine-two runs");
        println!(
            "{user}: {} applicable AND pairs, {} applicable AND_OR pairs",
            figs.and_records.len(),
            figs.and_or_records.len()
        );
        for anchor in 0..3usize {
            let pts: Vec<(f64, f64)> = figs
                .and_or_records
                .iter()
                .filter(|r| r.members.first() == Some(&anchor))
                .take(20)
                .enumerate()
                .map(|(i, r)| (i as f64, r.intensity))
                .collect();
            if !pts.is_empty() {
                print!(
                    "{}",
                    render_series(&format!("anchor preference {anchor} (AND_OR)"), &pts)
                );
            }
        }
    }
}

fn run_fig32_34(fx: &Fixture) {
    banner("Figs. 32–34 — Partially-Combine-All intensity variation");
    for user in fx.study_users() {
        let records = partially_combine_all_figs(fx, user).expect("PCA runs");
        println!("{user}: {} combinations executed", records.len());
        for arity_band in [(2usize, 2usize), (5, 5), (10, usize::MAX)] {
            let pts: Vec<(f64, f64)> = records
                .iter()
                .filter(|r| r.arity() >= arity_band.0 && r.arity() <= arity_band.1)
                .enumerate()
                .map(|(i, r)| (i as f64, r.intensity))
                .collect();
            let label = if arity_band.1 == usize::MAX {
                format!("arity >= {}", arity_band.0)
            } else {
                format!("arity {}", arity_band.0)
            };
            if !pts.is_empty() {
                print!("{}", render_series(&label, &pts));
            }
        }
    }
}

fn run_fig35_36(fx: &Fixture) {
    banner("Figs. 35–36 — Bias-Random: valid vs invalid combinations (100 seeded runs)");
    for user in fx.study_users() {
        let runs = bias_random_figs(fx, user, 100).expect("bias-random runs");
        let mut t = TextTable::new(&["Valid combinations", "Invalid attempts", "Runs"]);
        let mut grouped: std::collections::BTreeMap<(usize, usize), usize> =
            std::collections::BTreeMap::new();
        for (v, i) in &runs {
            *grouped.entry((*v, *i)).or_default() += 1;
        }
        for ((v, i), n) in grouped {
            t.row(vec![v.to_string(), i.to_string(), n.to_string()]);
        }
        println!("{user}:");
        print!("{}", t.render());
    }
}

fn run_fig37_38(fx: &Fixture) {
    banner("Figs. 37–38 — PEPS vs TA (hybrid profile) + §7.6.2 metrics");
    for user in fx.study_users() {
        let r = peps_vs_ta(fx, user, PepsVariant::Complete).expect("comparison runs");
        println!(
            "{user}: threshold {:.4} → PEPS ranks {} tuples, TA ranks {}",
            r.threshold,
            r.peps.len(),
            r.ta.len()
        );
        println!(
            "  similarity {:.0}%, positional overlap {:.0}%, order concordance {:.0}%",
            r.similarity * 100.0,
            r.overlap * 100.0,
            r.concordance * 100.0
        );
        let peps_pts: Vec<(f64, f64)> = r
            .peps
            .iter()
            .take(25)
            .enumerate()
            .map(|(i, (_, g))| (i as f64, *g))
            .collect();
        let ta_pts: Vec<(f64, f64)> =
            r.ta.iter()
                .take(25)
                .enumerate()
                .map(|(i, (_, g))| (i as f64, *g))
                .collect();
        print!("{}", render_series("PEPS intensity (first 25)", &peps_pts));
        print!("{}", render_series("TA intensity (first 25)", &ta_pts));
        let (sim, ovl) = qt_only_equivalence(fx, user).expect("qt-only comparison");
        println!(
            "  quantitative-only control: similarity {:.0}%, overlap {:.0}%",
            sim * 100.0,
            ovl * 100.0
        );
    }
}

fn run_fig39_40(fx: &Fixture, small: bool) {
    banner("Figs. 39–40 — PEPS latency vs K");
    let ks: Vec<usize> = if small {
        vec![10, 100, 200, 400]
    } else {
        vec![10, 100, 200, 300, 400, 500, 600, 700, 800]
    };
    let reps = if small { 3 } else { 10 };
    for user in fx.study_users() {
        let pts = peps_latency(fx, user, &ks, reps).expect("latency sweep runs");
        let mut t = TextTable::new(&["K", "Approx PEPS", "Complete PEPS", "Quantitative-only"]);
        for p in pts {
            t.row(vec![
                p.k.to_string(),
                ms(p.approximate),
                ms(p.complete),
                ms(p.quantitative_only),
            ]);
        }
        println!("{user}:");
        print!("{}", t.render());
    }
}
