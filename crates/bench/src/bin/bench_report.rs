//! Emits the machine-readable perf snapshot for the current PR (e.g.
//! `BENCH_PR3.json`), prints a side-by-side delta against the newest
//! checked-in `BENCH_PR*.json`, and **fails (exit 1) when a headline row
//! regresses** by more than [`GUARD_MAX_REGRESSION`] — the bench gate
//! `scripts/ci.sh --release-bench` runs.
//!
//! Measures, per corpus size (default 2 000 and 20 000 papers; override
//! with `BENCH_SIZES=2000,20000`), across the **three generations** of
//! set algebra (adaptive `TupleSet` / pure `BitSet` / seed
//! `HashSet<Value>`, all memo-warmed so the timed regions are pure set
//! algebra):
//!
//! * `pairwise_build` — `PairwiseCache::build` wall time, plus the cold
//!   adaptive build including its `n` SQL queries;
//! * `peps_top_k` — `Peps::top_k` latency (complete variant, k = 10 and
//!   100) for all three engines over the same pairwise cache;
//! * `set_algebra` / `set_algebra_sparse` — micro-ops over the densest
//!   and sparsest profile tuple sets, with per-set container bytes in
//!   the `memory` section;
//! * `pairwise_build_parallel` — the PR 3 sharded triangular pass (now
//!   cost-weighted) at 1, 2 and 4 worker threads (byte-identical
//!   results; the delta is pure scheduling, so single-core hosts show
//!   spawn overhead, multi-core hosts show speedup — the host's core
//!   count is recorded as `available_parallelism`);
//! * `peps_parallel` — PR 4: `Peps::top_k` with the round expansions
//!   sharded at 1, 2 and 4 workers (same caveat on single-core hosts;
//!   `tests/parallel_equivalence.rs` pins every count byte-identical);
//! * `multi_session` — N user sessions served from one shared
//!   `ProfileCache` snapshot versus N cold executors that re-run every
//!   profile query;
//! * `containers` — PR 4: how the rich profile's tuple sets distribute
//!   over the three adaptive containers (array / runs / bitmap), with
//!   per-container byte totals against the pure-bitmap footprint;
//! * `live_ingest` — PR 6: warming on a 95 % base corpus then ingesting
//!   the remaining 5 % as an append-only delta
//!   (`ProfileCache::ingest_delta`) versus a cold full re-warm over the
//!   grown corpus. Non-headline: the rows carry no `name` field, so the
//!   regression guard ignores them;
//! * `scaling` — PR 8 (only with `--scaling`, the `scripts/ci.sh
//!   --scaling` mode): per-thread-count curves at 1, 2, 4 and 8 workers
//!   for the pairwise build, PEPS top-k (work-stealing rounds) and
//!   batched serving, each with its speedup over the 1-worker run. On a
//!   1-core host the section records an explicit
//!   `"skipped": "available_parallelism=1"` marker instead of junk
//!   spawn-overhead rows; without the flag it records
//!   `"skipped": "not_requested"`. Non-headline either way (the rows
//!   carry no `name` field), so the regression guard never trips on a
//!   host's core count;
//! * `batched_serving` — PR 7: 100–400 simulated sessions drawing
//!   profiles Zipf-popularly from the variant pool, served unbatched
//!   (every session its own executor + PEPS rounds, fanned over 4 OS
//!   threads) versus one `BatchScheduler` run that evaluates each
//!   distinct profile identity once and demultiplexes. Both shapes are
//!   checksum-verified equal before timing. Non-headline, same as
//!   `live_ingest`;
//! * `graph_workload` — PR 10: the graph-derived workload end to end —
//!   property-graph build over the corpus, co-author/venue co-occurrence
//!   derivation, DSL parse + compile of a profile naming `COAUTHOR_OF` /
//!   `SAME_VENUE_AS` atoms, and PEPS top-k over the compiled atoms.
//!   Non-headline (the rows carry a `stage` field, no `name`), so the
//!   regression guard and the delta printer ignore them;
//! * `storage_1m` — PR 9: the columnar `distinct_row_set` plan versus
//!   the row-materialising reference on scan- and join-shaped queries,
//!   and warm-snapshot persistence (`ProfileCache::save_to` /
//!   `load_from`) versus a cold SQL re-warm, at every `BENCH_SIZES`
//!   corpus. With `--bench-1m` the section additionally streams a
//!   million-paper corpus (`BENCH_1M_PAPERS` overrides the size)
//!   through `load_streamed` and records single-shot end-to-end
//!   timings: corpus build, profile warm, pairwise build, PEPS top-k,
//!   snapshot save/load, and the columnar-vs-rowwise scan at scale.
//!   Non-headline (custom field names), so the regression guard and
//!   the delta printer ignore every row.
//!
//! The **headline rows** (`pairwise_build`, `peps_top_k` — including the
//! PR 4 `sparse_k10` row over a sparse/range-heavy synthetic profile,
//! the regime the run container and clone-free expansion target) are the
//! regression guard: each is compared against the same row of the
//! baseline report and the run exits non-zero past the threshold. The
//! comparison is **normalised by the frozen PR 1 bitset engine** (the
//! control both runs measure under their own conditions) whenever the
//! baseline recorded it, so host-wide drift between runs — thermal
//! state, noisy neighbours on shared hardware — cancels out instead of
//! tripping the gate; PR 1-era baselines fall back to raw wall-clock.
//!
//! Usage: `cargo run --release -p hypre-bench --bin bench_report
//! [--scaling] [--bench-1m] [out.json [baseline.json]]` — with no positional
//! arguments the output name is derived as `BENCH_PR{n+1}.json` from
//! the newest checked-in `BENCH_PR{n}.json`, which doubles as the
//! baseline.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use hypre_bench::baseline::{HashSetAlgebra, SeedPeps};
use hypre_bench::bitset_baseline::{BitsetAlgebra, BitsetPeps};
use hypre_bench::timing::median_time;
use hypre_bench::{serving, Fixture};
use hypre_core::prelude::*;

/// Maximum tolerated slowdown of a headline row versus the baseline
/// report before the run fails (1.25 = 25 % regression budget).
const GUARD_MAX_REGRESSION: f64 = 1.25;

/// Sections the regression guard watches.
const HEADLINE_SECTIONS: [&str; 2] = ["pairwise_build", "peps_top_k"];

/// One comparison row: median nanoseconds per generation.
struct Row {
    section: &'static str,
    name: String,
    papers: usize,
    adaptive_ns: u128,
    bitset_ns: u128,
    hashset_ns: u128,
}

impl Row {
    /// Speedup of the adaptive engine over the pure-bitmap generation.
    fn vs_bitset(&self) -> f64 {
        self.bitset_ns as f64 / self.adaptive_ns.max(1) as f64
    }

    /// Speedup of the adaptive engine over the seed generation.
    fn vs_hashset(&self) -> f64 {
        self.hashset_ns as f64 / self.adaptive_ns.max(1) as f64
    }
}

/// One memory row: container bytes for a profile tuple set under both
/// dense generations, tagged with the adaptive container it picked.
struct MemRow {
    papers: usize,
    name: String,
    container: &'static str,
    cardinality: usize,
    adaptive_bytes: usize,
    bitset_bytes: usize,
}

/// One parallel row: a warm parallel phase at a worker count
/// (`pairwise_build_parallel` or `peps_parallel`).
struct ParallelRow {
    section: &'static str,
    papers: usize,
    threads: usize,
    ns: u128,
}

/// One container-census row: how many of the profile's tuple sets picked
/// a container, and what they cost against the pure-bitmap generation.
struct ContainerRow {
    papers: usize,
    container: &'static str,
    sets: usize,
    adaptive_bytes: usize,
    bitset_bytes: usize,
}

/// One serving row: N sessions cold versus over a shared snapshot.
struct MultiSessionRow {
    papers: usize,
    sessions: usize,
    cold_ns: u128,
    shared_ns: u128,
    warm_build_ns: u128,
}

/// One live-ingest row: appending a delta into a warmed snapshot versus
/// a cold full re-warm over the grown corpus.
struct LiveIngestRow {
    papers: usize,
    delta_rows: usize,
    changed_predicates: usize,
    ingest_ns: u128,
    rewarm_ns: u128,
}

/// Worker counts the `--scaling` curves sweep.
const SCALING_THREADS: [usize; 4] = [1, 2, 4, 8];

/// One scaling-curve row: a warm parallel phase at a worker count, for
/// the multi-core curves the `--scaling` mode emits, plus the summed
/// work-stealing counters (`crate::steal`) of one instrumented run of
/// the phase — tasks claimed, successful steals, idle victim probes.
/// Phases that never enter the work-stealing pool report zeros.
/// Non-headline (no `name` field in the JSON), so the regression guard
/// ignores it.
struct ScalingRow {
    phase: &'static str,
    papers: usize,
    threads: usize,
    ns: u128,
    tasks: usize,
    steals: usize,
    idle_probes: usize,
}

/// One storage row (PR 9): the columnar `distinct_row_set` plan versus
/// the row-materialising reference over the identical query. Custom
/// field names keep it out of the regression guard.
struct StorageScanRow {
    papers: usize,
    name: &'static str,
    rows_out: usize,
    columnar_ns: u128,
    rowwise_ns: u128,
}

/// One snapshot row (PR 9): persisting a warmed `ProfileCache` to the
/// versioned binary snapshot format versus re-warming the same profile
/// from SQL.
struct StorageSnapRow {
    papers: usize,
    sets: usize,
    snapshot_bytes: u64,
    save_ns: u128,
    load_ns: u128,
    rewarm_ns: u128,
}

/// One million-paper gate row (PR 9, `--bench-1m`): a single-shot
/// end-to-end phase timing over the streamed corpus — these phases run
/// seconds to minutes, so they are timed once with [`time_once`]
/// instead of the median-of-5 harness.
struct StorageMillionRow {
    papers: usize,
    phase: &'static str,
    ns: u128,
    detail: String,
}

/// One batched-serving row: a Zipf session mix served unbatched versus
/// through one `BatchScheduler` run.
struct BatchedServingRow {
    papers: usize,
    sessions: usize,
    profiles: usize,
    groups: usize,
    shared: usize,
    unbatched_ns: u128,
    batched_ns: u128,
}

/// One graph-workload row (PR 10): a stage of the graph-derived pipeline
/// — property-graph build, co-occurrence derivation, DSL compile, PEPS
/// top-k over derived atoms. Non-headline: the `stage` field (no `name`)
/// keeps every row out of the regression guard and the delta printer.
struct GraphWorkloadRow {
    papers: usize,
    stage: &'static str,
    ns: u128,
    detail: String,
}

fn measure<R>(f: impl FnMut() -> R) -> u128 {
    median_time(5, Duration::from_millis(120), f).as_nanos()
}

/// Times one execution of `f` — for the `--bench-1m` phases, where a
/// single run already takes seconds and median-of-5 would be wasteful.
fn time_once<R>(f: impl FnOnce() -> R) -> (u128, R) {
    let start = std::time::Instant::now();
    let out = f();
    (start.elapsed().as_nanos(), out)
}

/// Drains the process-wide work-stealing counters and sums them across
/// workers: `(tasks, steals, idle_probes)`.
fn steal_totals() -> (usize, usize, usize) {
    take_cumulative_stats()
        .iter()
        .fold((0, 0, 0), |(t, s, p), w| {
            (t + w.tasks, s + w.steals, p + w.idle_probes)
        })
}

/// A sparse/range-heavy synthetic profile: year windows (whose tuple
/// sets intern to contiguous id runs — run-container territory) plus
/// single-author long-tail atoms (tiny arrays). This is the regime the
/// PR 4 run container and clone-free COW expansion target, and the
/// `sparse_k10` headline row measures.
fn sparse_profile() -> Vec<PrefAtom> {
    [
        ("dblp.year>=1995", 0.9),
        ("dblp.year>=2000", 0.8),
        ("dblp.year>=2005", 0.7),
        ("dblp_author.aid=3", 0.6),
        ("dblp_author.aid=7", 0.55),
        ("dblp.year>=2008", 0.5),
        ("dblp_author.aid=11", 0.45),
        ("dblp_author.aid=19", 0.4),
        ("dblp.year>=2010", 0.35),
        ("dblp_author.aid=23", 0.3),
    ]
    .iter()
    .enumerate()
    .map(|(i, (pred, intensity))| {
        PrefAtom::new(
            i,
            relstore::parse_predicate(pred).expect("static predicate parses"),
            *intensity,
        )
    })
    .collect()
}

/// The numeric suffix of a `BENCH_PR<n>.json` file name.
fn bench_file_number(name: &str) -> Option<u32> {
    name.strip_prefix("BENCH_PR")?
        .strip_suffix(".json")?
        .parse()
        .ok()
}

/// Every `BENCH_PR*.json` in the current directory, newest (highest
/// number) first. Note this sees the working tree, not the git index —
/// `scripts/ci.sh` resolves the *checked-in* baseline via
/// `git ls-files` and passes both names explicitly; this listing is the
/// fallback for direct invocations.
fn bench_files_newest_first() -> Vec<(u32, String)> {
    let mut files: Vec<(u32, String)> = std::fs::read_dir(".")
        .into_iter()
        .flatten()
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            Some((bench_file_number(&name)?, name))
        })
        .collect();
    files.sort_by_key(|(n, _)| std::cmp::Reverse(*n));
    files
}

fn main() {
    let mut scaling_requested = false;
    let mut bench_1m = false;
    let mut positional: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--scaling" => scaling_requested = true,
            "--bench-1m" => bench_1m = true,
            other if other.starts_with("--") => {
                eprintln!("unknown flag: {other} (supported: --scaling, --bench-1m)");
                std::process::exit(2);
            }
            _ => positional.push(arg),
        }
    }
    let mut args = positional.into_iter();
    let known = bench_files_newest_first();
    let out_path = args
        .next()
        .unwrap_or_else(|| format!("BENCH_PR{}.json", known.first().map_or(1, |(n, _)| n + 1)));
    // Baseline: explicit second argument, else the newest bench file
    // that is not the output itself (so regenerating the current PR's
    // artifact in place still guards against its predecessor).
    let baseline_path = args.next().or_else(|| {
        known
            .iter()
            .map(|(_, name)| name.clone())
            .find(|name| *name != out_path)
    });
    let mut sizes: Vec<usize> = std::env::var("BENCH_SIZES")
        .unwrap_or_else(|_| "2000,20000".to_owned())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .collect();
    if sizes.is_empty() {
        eprintln!("BENCH_SIZES contained no usable sizes; using 2000,20000");
        sizes = vec![2_000, 20_000];
    }

    let mut rows: Vec<Row> = Vec::new();
    let mut mem: Vec<MemRow> = Vec::new();
    let mut parallel: Vec<ParallelRow> = Vec::new();
    let mut containers: Vec<ContainerRow> = Vec::new();
    let mut multi: Vec<MultiSessionRow> = Vec::new();
    let mut live: Vec<LiveIngestRow> = Vec::new();
    let mut batched: Vec<BatchedServingRow> = Vec::new();
    let mut graph_rows: Vec<GraphWorkloadRow> = Vec::new();
    let mut scaling: Vec<ScalingRow> = Vec::new();
    let mut storage_scans: Vec<StorageScanRow> = Vec::new();
    let mut storage_snaps: Vec<StorageSnapRow> = Vec::new();
    let mut storage_million: Vec<StorageMillionRow> = Vec::new();
    let mut extra = String::new();

    let cores = Parallelism::Auto.workers();
    // The scaling curves only mean something with real cores behind
    // them: a 1-core host would measure thread-spawn overhead, not
    // scaling, so the section is skipped with an explicit marker and
    // the headline guard never sees a core-count artifact.
    let measure_scaling = scaling_requested && cores > 1;

    for &n in &sizes {
        eprintln!("building {n}-paper fixture…");
        let fx = Fixture::papers(n);
        let atoms = fx.graph.positive_profile(fx.rich_user);
        eprintln!("  profile: {} preferences", atoms.len());

        // Cold adaptive build (includes the n SQL queries).
        let cold_ns = measure(|| {
            let fresh = fx.executor();
            PairwiseCache::build(&atoms, &fresh)
                .unwrap()
                .applicable_count()
        });
        let _ = write!(
            extra,
            "{}{{\"section\":\"pairwise_build_cold\",\"papers\":{n},\"adaptive_ns\":{cold_ns}}}",
            if extra.is_empty() { "" } else { ",\n    " },
        );

        // Warm engines: the comparison isolates set algebra.
        let exec = fx.executor();
        let hashset = HashSetAlgebra::new(&exec);
        let bitset = BitsetAlgebra::new(&exec);
        hashset.warm(&atoms).unwrap();
        bitset.warm(&atoms).unwrap();
        let pairs = PairwiseCache::build(&atoms, &exec).unwrap();

        rows.push(Row {
            section: "pairwise_build",
            name: "warm".to_owned(),
            papers: n,
            adaptive_ns: measure(|| {
                PairwiseCache::build(&atoms, &exec)
                    .unwrap()
                    .applicable_count()
            }),
            bitset_ns: measure(|| bitset.pairwise_counts(&atoms).unwrap().len()),
            hashset_ns: measure(|| hashset.pairwise_counts(&atoms).unwrap().len()),
        });

        // PR 3: the same warm triangular pass, sharded (cost-weighted
        // chunks since PR 4).
        for threads in [1usize, 2, 4] {
            parallel.push(ParallelRow {
                section: "pairwise_build_parallel",
                papers: n,
                threads,
                ns: measure(|| {
                    PairwiseCache::build_with(&atoms, &exec, Parallelism::threads(threads))
                        .unwrap()
                        .applicable_count()
                }),
            });
        }

        let peps = Peps::new(&atoms, &exec, &pairs, PepsVariant::Complete);
        let dense_peps = BitsetPeps::new(&atoms, &bitset, &pairs, PepsVariant::Complete);
        let seed_peps = SeedPeps::new(&atoms, &hashset, &pairs, PepsVariant::Complete);
        for k in [10usize, 100] {
            rows.push(Row {
                section: "peps_top_k",
                name: format!("complete_k{k}"),
                papers: n,
                adaptive_ns: measure(|| peps.top_k(k).unwrap().len()),
                bitset_ns: measure(|| dense_peps.top_k(k).unwrap().len()),
                hashset_ns: measure(|| seed_peps.top_k(k).unwrap().len()),
            });
        }

        // PR 4: the same top_k with the round expansions sharded across
        // the executor's Parallelism workers.
        for threads in [1usize, 2, 4] {
            exec.set_parallelism(Parallelism::threads(threads));
            parallel.push(ParallelRow {
                section: "peps_parallel",
                papers: n,
                threads,
                ns: measure(|| peps.top_k(100).unwrap().len()),
            });
        }
        exec.set_parallelism(Parallelism::Sequential);

        // PR 4: a sparse/range-heavy profile — year windows interning to
        // contiguous id runs plus single-author long-tail atoms — the
        // regime the run container and clone-free COW expansion target.
        // A headline row: the guard covers it from this PR on.
        let sparse_atoms = sparse_profile();
        hashset.warm(&sparse_atoms).unwrap();
        bitset.warm(&sparse_atoms).unwrap();
        let sparse_pairs = PairwiseCache::build(&sparse_atoms, &exec).unwrap();
        let sparse_peps = Peps::new(&sparse_atoms, &exec, &sparse_pairs, PepsVariant::Complete);
        let sparse_dense =
            BitsetPeps::new(&sparse_atoms, &bitset, &sparse_pairs, PepsVariant::Complete);
        let sparse_seed = SeedPeps::new(
            &sparse_atoms,
            &hashset,
            &sparse_pairs,
            PepsVariant::Complete,
        );
        rows.push(Row {
            section: "peps_top_k",
            name: "sparse_k10".to_owned(),
            papers: n,
            adaptive_ns: measure(|| sparse_peps.top_k(10).unwrap().len()),
            bitset_ns: measure(|| sparse_dense.top_k(10).unwrap().len()),
            hashset_ns: measure(|| sparse_seed.top_k(10).unwrap().len()),
        });

        // PR 4: container census of the rich profile's tuple sets.
        for kind in ["array", "runs", "bitmap"] {
            let mut row = ContainerRow {
                papers: n,
                container: kind,
                sets: 0,
                adaptive_bytes: 0,
                bitset_bytes: 0,
            };
            for a in &atoms {
                let set = exec.tuple_set(&a.predicate).unwrap();
                if set.container() == kind {
                    row.sets += 1;
                    row.adaptive_bytes += set.heap_bytes();
                    row.bitset_bytes += bitset.tuple_set(&a.predicate).unwrap().heap_bytes();
                }
            }
            containers.push(row);
        }

        // PR 3: multi-session serving — N sessions over one shared
        // snapshot versus N cold executors re-running every query. Both
        // shapes run their sessions concurrently (hypre_bench::serving),
        // so the delta isolates what the snapshot buys rather than
        // conflating it with thread-level parallelism.
        const SESSIONS: usize = 4;
        let warm_build_ns = measure(|| {
            let warm = fx.executor();
            let built = PairwiseCache::build(&atoms, &warm).unwrap().entries().len();
            (ProfileCache::snapshot(&warm).len(), built)
        });
        let cache = Arc::new(ProfileCache::snapshot(&exec));
        let base = BaseQuery::dblp();
        multi.push(MultiSessionRow {
            papers: n,
            sessions: SESSIONS,
            cold_ns: measure(|| {
                serving::serve_cold_concurrent(&fx.db, &base, &atoms, SESSIONS, 10)
            }),
            shared_ns: measure(|| {
                serving::serve_shared_concurrent(&fx.db, &cache, &atoms, SESSIONS, 10)
            }),
            warm_build_ns,
        });

        // PR 6: live ingest — warm once on a 95 % base corpus, then
        // append the remaining 5 % as an append-only delta. The
        // incremental path re-scores only the predicates the delta
        // touches; the alternative is a cold full re-warm.
        let split = hypre_bench::ingest::split_corpus(&fx.dataset, 0.95);
        let predicates: Vec<&relstore::Predicate> = atoms.iter().map(|a| &a.predicate).collect();
        let base_cache = ProfileCache::warm(&split.base, BaseQuery::dblp(), predicates.clone())
            .expect("base warm-up succeeds");
        let (_, report) = base_cache
            .ingest_delta(&split.full)
            .expect("append-only delta ingests");
        live.push(LiveIngestRow {
            papers: n,
            delta_rows: split.delta_papers + split.delta_links,
            changed_predicates: report.changed.len(),
            ingest_ns: measure(|| base_cache.ingest_delta(&split.full).unwrap().1.new_tuples),
            rewarm_ns: measure(|| {
                ProfileCache::warm(&split.full, BaseQuery::dblp(), predicates.clone())
                    .unwrap()
                    .len()
            }),
        });

        // PR 9: columnar segment storage. Two query shapes where the
        // columnar plan and the row-materialising reference do the same
        // logical work: an OR-of-ranges scan (no usable index seed, so
        // both paths walk every driving row) and a joined filter (the
        // plan membership-tests typed key segments; the reference
        // builds the generic hash-join pipeline).
        let scan_q = relstore::SelectQuery::from("dblp").filter(
            relstore::parse_predicate("dblp.year>=2005 OR dblp.year<1995")
                .expect("static predicate parses"),
        );
        let join_q = relstore::SelectQuery::from("dblp")
            .join(
                "dblp_author",
                relstore::ColRef::parse("dblp.pid"),
                relstore::ColRef::parse("dblp_author.pid"),
            )
            .filter(
                relstore::parse_predicate("dblp_author.aid<=25").expect("static predicate parses"),
            );
        for (name, q) in [("scan_or_filter", &scan_q), ("joined_filter", &join_q)] {
            let fast = q.distinct_row_set(&fx.db).unwrap();
            let slow = q.distinct_row_set_rowwise(&fx.db).unwrap();
            assert_eq!(fast, slow, "columnar and rowwise plans must agree ({name})");
            storage_scans.push(StorageScanRow {
                papers: n,
                name,
                rows_out: fast.len(),
                columnar_ns: measure(|| q.distinct_row_set(&fx.db).unwrap().len()),
                rowwise_ns: measure(|| q.distinct_row_set_rowwise(&fx.db).unwrap().len()),
            });
        }

        // PR 9: warm-snapshot persistence — save the warmed profile
        // cache to the versioned binary format, load it back, and
        // compare the load against what it replaces: a cold SQL
        // re-warm of the same predicates.
        let snap_path =
            std::env::temp_dir().join(format!("hypre_bench_{n}_{}.hyprsnap", std::process::id()));
        let warm_cache = ProfileCache::warm(&fx.db, BaseQuery::dblp(), predicates.clone())
            .expect("profile warm-up succeeds");
        let save_ns = measure(|| warm_cache.save_to(&snap_path, None).unwrap());
        let snapshot_bytes = std::fs::metadata(&snap_path)
            .expect("snapshot written")
            .len();
        storage_snaps.push(StorageSnapRow {
            papers: n,
            sets: warm_cache.len(),
            snapshot_bytes,
            save_ns,
            load_ns: measure(|| ProfileCache::load_from(&snap_path, &fx.db).unwrap().0.len()),
            rewarm_ns: measure(|| {
                ProfileCache::warm(&fx.db, BaseQuery::dblp(), predicates.clone())
                    .unwrap()
                    .len()
            }),
        });
        let _ = std::fs::remove_file(&snap_path);

        // PR 7: batched cross-session serving. Sessions draw their
        // profile Zipf-popularly from the variant pool (overlapping
        // slices of the two study users' profiles), so a real mix of
        // hot and long-tail identities reaches the scheduler. The
        // unbatched baseline runs every session's own PEPS rounds over
        // 4 OS threads; the batched shape evaluates each distinct
        // profile identity once and demultiplexes.
        let modest_atoms = fx.graph.positive_profile(fx.modest_user);
        let profiles = hypre_bench::profile_variants(&atoms, &modest_atoms);
        let zipf_cache = {
            let warm = fx.executor();
            for profile in &profiles {
                for atom in profile {
                    warm.tuple_set(&atom.predicate).expect("variant predicate");
                }
            }
            Arc::new(ProfileCache::snapshot(&warm))
        };
        let session_counts: &[usize] = if n < 10_000 { &[100, 400] } else { &[100] };
        for &sessions in session_counts {
            let mix = serving::zipf_session_mix(&profiles, sessions, 10, 1.1, 42);
            let unbatched_total = serving::serve_unbatched_sessions(&fx.db, &zipf_cache, &mix, 4);
            let (batched_total, stats) =
                serving::serve_batched_sessions(&fx.db, &zipf_cache, &mix, Parallelism::threads(4));
            assert_eq!(
                unbatched_total, batched_total,
                "batched and unbatched serving must agree before timing"
            );
            batched.push(BatchedServingRow {
                papers: n,
                sessions,
                profiles: profiles.len(),
                groups: stats.groups,
                shared: stats.shared,
                unbatched_ns: measure(|| {
                    serving::serve_unbatched_sessions(&fx.db, &zipf_cache, &mix, 4)
                }),
                batched_ns: measure(|| {
                    serving::serve_batched_sessions(
                        &fx.db,
                        &zipf_cache,
                        &mix,
                        Parallelism::threads(4),
                    )
                    .0
                }),
            });
        }

        // PR 10: the graph-derived workload family — corpus into the
        // property graph, co-occurrence derivation, a DSL profile naming
        // the derived atoms, and PEPS top-k over them. Non-headline
        // (`stage` field, no `name`), so the guard never sees it.
        {
            use dblp_workload::graph::PaperGraph;
            let (build_ns, mut pg) =
                time_once(|| PaperGraph::build(&fx.dataset).expect("corpus loads into the graph"));
            graph_rows.push(GraphWorkloadRow {
                papers: n,
                stage: "build_graph",
                ns: build_ns,
                detail: format!(
                    "{} nodes, {} edges",
                    pg.graph.node_count(),
                    pg.graph.edge_count()
                ),
            });
            let (derive_ns, (co_report, venue_report)) =
                time_once(|| pg.derive_preference_edges(4).expect("derivation succeeds"));
            graph_rows.push(GraphWorkloadRow {
                papers: n,
                stage: "derive_edges",
                ns: derive_ns,
                detail: format!(
                    "{} coauthor + {} venue pairs",
                    co_report.pairs, venue_report.pairs
                ),
            });
            let catalog = pg.derived_catalog(&fx.dataset);
            let author = fx
                .dataset
                .authors
                .iter()
                .max_by_key(|a| pg.coauthor_aids(a.aid).len())
                .expect("corpus has authors");
            let venue = fx
                .dataset
                .venues()
                .into_iter()
                .map(String::from)
                .max_by_key(|v| pg.co_venues(v).len())
                .expect("corpus has venues");
            let source = format!(
                "PROFILE bench OVER dblp {{
                    COAUTHOR_OF('{author_name}') @ 0.8;
                    SAME_VENUE_AS('{venue_name}') @ 0.5;
                    COAUTHOR_OF('{author_name}') PRIOR @ 0.6 year < 2005;
                }}",
                author_name = author.full_name.replace('\'', "''"),
                venue_name = venue.replace('\'', "''"),
            );
            let compile_ns = measure(|| {
                parse_profile(&source)
                    .expect("bench profile parses")
                    .compile(UserId(999), &catalog)
                    .expect("bench profile compiles")
                    .atoms()
                    .expect("atoms build")
                    .len()
            });
            let g_atoms = parse_profile(&source)
                .expect("bench profile parses")
                .compile(UserId(999), &catalog)
                .expect("bench profile compiles")
                .atoms()
                .expect("atoms build");
            graph_rows.push(GraphWorkloadRow {
                papers: n,
                stage: "dsl_compile",
                ns: compile_ns,
                detail: format!("{} positive atoms", g_atoms.len()),
            });
            let g_exec = fx.executor();
            let g_pairs =
                PairwiseCache::build(&g_atoms, &g_exec).expect("pairwise over derived atoms");
            let g_peps = Peps::new(&g_atoms, &g_exec, &g_pairs, PepsVariant::Complete);
            let topk_ns = measure(|| g_peps.top_k(10).expect("top-k over derived atoms").len());
            graph_rows.push(GraphWorkloadRow {
                papers: n,
                stage: "graph_top_k",
                ns: topk_ns,
                detail: "k=10".to_owned(),
            });
        }

        // PR 8: multi-core scaling curves (only with --scaling, and
        // only when the host actually has cores to scale over). Three
        // phases per thread count: the cost-weighted work-stealing
        // pairwise build, PEPS top-k with work-stealing rounds, and
        // batched Zipf serving through the scheduler. Results are
        // byte-identical at every count (tests/parallel_equivalence.rs
        // pins this), so the curves measure pure scheduling.
        if measure_scaling {
            // Each phase is timed with the median harness, then run
            // once more with the cumulative steal counters drained so
            // the row carries the per-run work-stealing profile.
            let scaling_mix = serving::zipf_session_mix(&profiles, 100, 10, 1.1, 42);
            for threads in SCALING_THREADS {
                let ns = measure(|| {
                    PairwiseCache::build_with(&atoms, &exec, Parallelism::threads(threads))
                        .unwrap()
                        .applicable_count()
                });
                let _ = take_cumulative_stats();
                PairwiseCache::build_with(&atoms, &exec, Parallelism::threads(threads))
                    .unwrap()
                    .applicable_count();
                let (tasks, steals, idle_probes) = steal_totals();
                scaling.push(ScalingRow {
                    phase: "pairwise_build",
                    papers: n,
                    threads,
                    ns,
                    tasks,
                    steals,
                    idle_probes,
                });
                exec.set_parallelism(Parallelism::threads(threads));
                let ns = measure(|| peps.top_k(100).unwrap().len());
                let _ = take_cumulative_stats();
                peps.top_k(100).unwrap();
                let (tasks, steals, idle_probes) = steal_totals();
                scaling.push(ScalingRow {
                    phase: "peps_top_k",
                    papers: n,
                    threads,
                    ns,
                    tasks,
                    steals,
                    idle_probes,
                });
                exec.set_parallelism(Parallelism::Sequential);
                let ns = measure(|| {
                    serving::serve_batched_sessions(
                        &fx.db,
                        &zipf_cache,
                        &scaling_mix,
                        Parallelism::threads(threads),
                    )
                    .0
                });
                let _ = take_cumulative_stats();
                serving::serve_batched_sessions(
                    &fx.db,
                    &zipf_cache,
                    &scaling_mix,
                    Parallelism::threads(threads),
                );
                let (tasks, steals, idle_probes) = steal_totals();
                scaling.push(ScalingRow {
                    phase: "batched_serving",
                    papers: n,
                    threads,
                    ns,
                    tasks,
                    steals,
                    idle_probes,
                });
            }
        }

        // Operand picks: densest pair (bitmap containers) and sparsest
        // non-empty pair (array containers).
        let counts: Vec<u64> = atoms
            .iter()
            .map(|a| exec.count(&a.predicate).unwrap())
            .collect();
        let mut idx: Vec<usize> = (0..atoms.len()).filter(|&i| counts[i] > 0).collect();
        idx.sort_by_key(|&i| std::cmp::Reverse(counts[i]));
        let mut regimes = Vec::new();
        if idx.len() >= 2 {
            regimes.push(("set_algebra", idx[0], idx[1]));
        } else {
            eprintln!("  fewer than two non-empty tuple sets; skipping set_algebra sections");
        }
        if idx.len() >= 4 {
            // Distinct from the dense pair, or the "sparse" rows would
            // just re-measure the dense operands under a new label.
            regimes.push(("set_algebra_sparse", idx[idx.len() - 1], idx[idx.len() - 2]));
        } else if idx.len() >= 2 {
            eprintln!(
                "  profile too small for a distinct sparse pair; skipping set_algebra_sparse"
            );
        }
        for (section, i, j) in regimes {
            let (pa, pb) = (&atoms[i].predicate, &atoms[j].predicate);
            let (aa, ab) = (exec.tuple_set(pa).unwrap(), exec.tuple_set(pb).unwrap());
            let (ba, bb) = (bitset.tuple_set(pa).unwrap(), bitset.tuple_set(pb).unwrap());
            let (ha, hb) = (
                hashset.tuple_set(pa).unwrap(),
                hashset.tuple_set(pb).unwrap(),
            );
            eprintln!(
                "  {section}: operand sets of {} and {} tuples ({} / {} containers)",
                aa.count(),
                ab.count(),
                aa.container(),
                ab.container(),
            );
            for (set_name, a_set, b_set) in [("a", &aa, &ba), ("b", &ab, &bb)] {
                mem.push(MemRow {
                    papers: n,
                    name: format!("{section}/{set_name}"),
                    container: a_set.container(),
                    cardinality: a_set.count(),
                    adaptive_bytes: a_set.heap_bytes(),
                    bitset_bytes: b_set.heap_bytes(),
                });
            }

            rows.push(Row {
                section,
                name: "and_count".to_owned(),
                papers: n,
                adaptive_ns: measure(|| aa.and_count(&ab)),
                bitset_ns: measure(|| ba.and_count(&bb)),
                hashset_ns: measure(|| ha.iter().filter(|v| hb.contains(*v)).count()),
            });
            rows.push(Row {
                section,
                name: "or".to_owned(),
                papers: n,
                adaptive_ns: measure(|| aa.or(&ab).count()),
                bitset_ns: measure(|| ba.or(&bb).count()),
                hashset_ns: measure(|| ha.union(&hb).count()),
            });
            rows.push(Row {
                section,
                name: "and_not".to_owned(),
                papers: n,
                adaptive_ns: measure(|| aa.and_not(&ab).count()),
                bitset_ns: measure(|| ba.and_not(&bb).count()),
                hashset_ns: measure(|| ha.difference(&hb).count()),
            });
        }
    }

    // PR 9: the million-paper gate. Streams the corpus straight into
    // columnar segments (`load_streamed` — no materialised dataset on
    // the way in), warms a fixed synthetic profile (preference
    // extraction needs a materialised dataset, which is exactly what
    // streaming avoids), and records single-shot end-to-end timings
    // for each serving phase at scale.
    if bench_1m {
        let m_papers: usize = std::env::var("BENCH_1M_PAPERS")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(1_000_000);
        eprintln!("streaming {m_papers}-paper corpus (--bench-1m)…");
        let config = dblp_workload::GeneratorConfig {
            papers: m_papers,
            authors: (m_papers * 2 / 5).max(50),
            venues: (m_papers / 65).clamp(8, 120),
            ..dblp_workload::GeneratorConfig::default()
        };
        let (build_ns, db) =
            time_once(|| dblp_workload::load_streamed(&config).expect("streamed load succeeds"));
        let paper_rows = db.table("dblp").expect("dblp loaded").len();
        let link_rows = db.table("dblp_author").expect("links loaded").len();
        storage_million.push(StorageMillionRow {
            papers: paper_rows,
            phase: "load_streamed",
            ns: build_ns,
            detail: format!("paper_rows={paper_rows} link_rows={link_rows}"),
        });

        let atoms = sparse_profile();
        let predicates: Vec<&relstore::Predicate> = atoms.iter().map(|a| &a.predicate).collect();
        let (warm_ns, cache) = time_once(|| {
            ProfileCache::warm(&db, BaseQuery::dblp(), predicates.clone())
                .expect("million-paper warm succeeds")
        });
        storage_million.push(StorageMillionRow {
            papers: paper_rows,
            phase: "profile_warm",
            ns: warm_ns,
            detail: format!("sets={}", cache.len()),
        });

        let cache = Arc::new(cache);
        let session = Executor::with_cache(&db, Arc::clone(&cache)).expect("cached executor");
        let (pair_ns, pairs) =
            time_once(|| PairwiseCache::build(&atoms, &session).expect("pairwise build succeeds"));
        storage_million.push(StorageMillionRow {
            papers: paper_rows,
            phase: "pairwise_build",
            ns: pair_ns,
            detail: format!("applicable={}", pairs.applicable_count()),
        });

        let peps = Peps::new(&atoms, &session, &pairs, PepsVariant::Complete);
        let (topk_ns, top) = time_once(|| peps.top_k(10).expect("top-k succeeds"));
        storage_million.push(StorageMillionRow {
            papers: paper_rows,
            phase: "peps_top_k_k10",
            ns: topk_ns,
            detail: format!("returned={}", top.len()),
        });

        // Snapshot at scale: save + load once each; the re-warm
        // comparison is the single-shot warm measured above over the
        // same corpus and predicates.
        let snap_path =
            std::env::temp_dir().join(format!("hypre_bench_1m_{}.hyprsnap", std::process::id()));
        let (save_ns, _) = time_once(|| {
            cache
                .save_to(&snap_path, Some(&pairs))
                .expect("snapshot save")
        });
        let snapshot_bytes = std::fs::metadata(&snap_path)
            .expect("snapshot written")
            .len();
        let (load_ns, loaded) =
            time_once(|| ProfileCache::load_from(&snap_path, &db).expect("snapshot load"));
        let _ = std::fs::remove_file(&snap_path);
        storage_snaps.push(StorageSnapRow {
            papers: paper_rows,
            sets: loaded.0.len(),
            snapshot_bytes,
            save_ns,
            load_ns,
            rewarm_ns: warm_ns,
        });

        let scan_q = relstore::SelectQuery::from("dblp").filter(
            relstore::parse_predicate("dblp.year>=2005 OR dblp.year<1995")
                .expect("static predicate parses"),
        );
        let (columnar_ns, fast) =
            time_once(|| scan_q.distinct_row_set(&db).expect("columnar scan"));
        let (rowwise_ns, slow) =
            time_once(|| scan_q.distinct_row_set_rowwise(&db).expect("rowwise scan"));
        assert_eq!(fast, slow, "columnar and rowwise plans must agree at 1M");
        storage_scans.push(StorageScanRow {
            papers: paper_rows,
            name: "scan_or_filter",
            rows_out: fast.len(),
            columnar_ns,
            rowwise_ns,
        });
    }

    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"bench\": \"{}\",\n  \"sizes\": {:?},\n  \"available_parallelism\": {cores},\n  \"cold\": [\n    {extra}\n  ],\n  \"results\": [\n",
        out_path.trim_end_matches(".json"),
        sizes
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"section\":\"{}\",\"name\":\"{}\",\"papers\":{},\"adaptive_ns\":{},\"bitset_ns\":{},\"hashset_ns\":{},\"vs_bitset\":{:.2},\"vs_hashset\":{:.2}}}{}",
            r.section,
            r.name,
            r.papers,
            r.adaptive_ns,
            r.bitset_ns,
            r.hashset_ns,
            r.vs_bitset(),
            r.vs_hashset(),
            if i + 1 == rows.len() { "" } else { "," },
        );
    }
    json.push_str("  ],\n  \"parallel\": [\n");
    for (i, p) in parallel.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"section\":\"{}\",\"papers\":{},\"threads\":{},\"ns\":{}}}{}",
            p.section,
            p.papers,
            p.threads,
            p.ns,
            if i + 1 == parallel.len() { "" } else { "," },
        );
    }
    json.push_str("  ],\n  \"containers\": [\n");
    for (i, c) in containers.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"papers\":{},\"container\":\"{}\",\"sets\":{},\"adaptive_bytes\":{},\"bitset_bytes\":{}}}{}",
            c.papers,
            c.container,
            c.sets,
            c.adaptive_bytes,
            c.bitset_bytes,
            if i + 1 == containers.len() { "" } else { "," },
        );
    }
    json.push_str("  ],\n  \"multi_session\": [\n");
    for (i, m) in multi.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"papers\":{},\"sessions\":{},\"cold_ns\":{},\"shared_ns\":{},\"warm_build_ns\":{},\"speedup\":{:.2}}}{}",
            m.papers,
            m.sessions,
            m.cold_ns,
            m.shared_ns,
            m.warm_build_ns,
            m.cold_ns as f64 / m.shared_ns.max(1) as f64,
            if i + 1 == multi.len() { "" } else { "," },
        );
    }
    json.push_str("  ],\n  \"live_ingest\": [\n");
    for (i, l) in live.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"papers\":{},\"delta_rows\":{},\"changed_predicates\":{},\"ingest_ns\":{},\"rewarm_ns\":{},\"speedup\":{:.2}}}{}",
            l.papers,
            l.delta_rows,
            l.changed_predicates,
            l.ingest_ns,
            l.rewarm_ns,
            l.rewarm_ns as f64 / l.ingest_ns.max(1) as f64,
            if i + 1 == live.len() { "" } else { "," },
        );
    }
    json.push_str("  ],\n  \"batched_serving\": [\n");
    for (i, b) in batched.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"papers\":{},\"sessions\":{},\"profiles\":{},\"groups\":{},\"shared\":{},\"unbatched_ns\":{},\"batched_ns\":{},\"speedup\":{:.2}}}{}",
            b.papers,
            b.sessions,
            b.profiles,
            b.groups,
            b.shared,
            b.unbatched_ns,
            b.batched_ns,
            b.unbatched_ns as f64 / b.batched_ns.max(1) as f64,
            if i + 1 == batched.len() { "" } else { "," },
        );
    }
    json.push_str("  ],\n  \"graph_workload\": [\n");
    for (i, g) in graph_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"section\":\"graph_workload\",\"papers\":{},\"stage\":\"{}\",\"ns\":{},\"detail\":\"{}\"}}{}",
            g.papers,
            g.stage,
            g.ns,
            g.detail,
            if i + 1 == graph_rows.len() { "" } else { "," },
        );
    }
    // PR 9 storage rows: three shapes share the section, told apart by
    // their `kind` field. Custom field names (no `name`/`adaptive_ns`)
    // keep every row out of the regression guard and the delta printer.
    json.push_str("  ],\n  \"storage_1m\": [\n");
    let storage_total = storage_scans.len() + storage_snaps.len() + storage_million.len();
    let mut storage_emitted = 0usize;
    let storage_sep = |emitted: &mut usize| {
        *emitted += 1;
        if *emitted == storage_total {
            ""
        } else {
            ","
        }
    };
    for s in &storage_scans {
        let _ = writeln!(
            json,
            "    {{\"section\":\"storage_1m\",\"kind\":\"distinct_row_set\",\"query\":\"{}\",\"papers\":{},\"rows_out\":{},\"columnar_ns\":{},\"rowwise_ns\":{},\"speedup\":{:.2}}}{}",
            s.name,
            s.papers,
            s.rows_out,
            s.columnar_ns,
            s.rowwise_ns,
            s.rowwise_ns as f64 / s.columnar_ns.max(1) as f64,
            storage_sep(&mut storage_emitted),
        );
    }
    for s in &storage_snaps {
        let _ = writeln!(
            json,
            "    {{\"section\":\"storage_1m\",\"kind\":\"snapshot\",\"papers\":{},\"sets\":{},\"snapshot_bytes\":{},\"save_ns\":{},\"load_ns\":{},\"rewarm_ns\":{},\"speedup\":{:.2}}}{}",
            s.papers,
            s.sets,
            s.snapshot_bytes,
            s.save_ns,
            s.load_ns,
            s.rewarm_ns,
            s.rewarm_ns as f64 / s.load_ns.max(1) as f64,
            storage_sep(&mut storage_emitted),
        );
    }
    for s in &storage_million {
        let _ = writeln!(
            json,
            "    {{\"section\":\"storage_1m\",\"kind\":\"million_gate\",\"phase\":\"{}\",\"papers\":{},\"ns\":{},\"detail\":\"{}\"}}{}",
            s.phase,
            s.papers,
            s.ns,
            s.detail,
            storage_sep(&mut storage_emitted),
        );
    }
    // The scaling section is always present so downstream parsers see a
    // stable schema: either measured rows or an explicit skip marker
    // (1-core hosts would measure spawn overhead, not scaling).
    json.push_str("  ],\n  \"scaling\": ");
    if measure_scaling {
        let _ = writeln!(json, "{{\"threads\": {SCALING_THREADS:?}, \"rows\": [");
        for (i, s) in scaling.iter().enumerate() {
            let _ = writeln!(
                json,
                "    {{\"section\":\"scaling\",\"phase\":\"{}\",\"papers\":{},\"threads\":{},\"ns\":{},\"speedup_vs_1\":{:.2},\"tasks\":{},\"steals\":{},\"idle_probes\":{}}}{}",
                s.phase,
                s.papers,
                s.threads,
                s.ns,
                scaling_speedup(&scaling, s),
                s.tasks,
                s.steals,
                s.idle_probes,
                if i + 1 == scaling.len() { "" } else { "," },
            );
        }
        json.push_str("  ]},\n  \"memory\": [\n");
    } else {
        let reason = if scaling_requested {
            "available_parallelism=1"
        } else {
            "not_requested"
        };
        let _ = write!(json, "{{\"skipped\": \"{reason}\"}},\n  \"memory\": [\n");
    }
    for (i, m) in mem.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"papers\":{},\"set\":\"{}\",\"container\":\"{}\",\"cardinality\":{},\"adaptive_bytes\":{},\"bitset_bytes\":{}}}{}",
            m.papers,
            m.name,
            m.container,
            m.cardinality,
            m.adaptive_bytes,
            m.bitset_bytes,
            if i + 1 == mem.len() { "" } else { "," },
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write report");
    println!("{json}");
    for r in &rows {
        println!(
            "{:>18} {:<14} n={:<6} adaptive {:>10} ns  bitset {:>10} ns  hashset {:>12} ns  vs-bitset {:>6.1}x  vs-hashset {:>7.1}x",
            r.section,
            r.name,
            r.papers,
            r.adaptive_ns,
            r.bitset_ns,
            r.hashset_ns,
            r.vs_bitset(),
            r.vs_hashset(),
        );
    }
    for p in &parallel {
        println!(
            "{:>22} threads={:<7} n={:<6} {:>10} ns  ({cores} cores available)",
            p.section, p.threads, p.papers, p.ns
        );
    }
    for c in &containers {
        println!(
            "{:>18} {:<8} n={:<6} sets={:<4} adaptive {:>9} B  bitset {:>9} B",
            "containers", c.container, c.papers, c.sets, c.adaptive_bytes, c.bitset_bytes
        );
    }
    for m in &multi {
        println!(
            "{:>18} {} sessions    n={:<6} cold {:>12} ns  shared {:>12} ns  ({:.1}x, warm build {} ns)",
            "multi_session",
            m.sessions,
            m.papers,
            m.cold_ns,
            m.shared_ns,
            m.cold_ns as f64 / m.shared_ns.max(1) as f64,
            m.warm_build_ns,
        );
    }
    for l in &live {
        println!(
            "{:>18} delta={:<6} n={:<6} changed={:<4} ingest {:>12} ns  full re-warm {:>12} ns  ({:.1}x)",
            "live_ingest",
            l.delta_rows,
            l.papers,
            l.changed_predicates,
            l.ingest_ns,
            l.rewarm_ns,
            l.rewarm_ns as f64 / l.ingest_ns.max(1) as f64,
        );
    }
    for b in &batched {
        println!(
            "{:>18} {} sessions  n={:<6} {} profiles → {} groups ({} shared)  unbatched {:>12} ns  batched {:>12} ns  ({:.1}x)",
            "batched_serving",
            b.sessions,
            b.papers,
            b.profiles,
            b.groups,
            b.shared,
            b.unbatched_ns,
            b.batched_ns,
            b.unbatched_ns as f64 / b.batched_ns.max(1) as f64,
        );
    }
    for g in &graph_rows {
        println!(
            "{:>18} {:<16} n={:<8} {:>12} ns  ({})",
            "graph_workload", g.stage, g.papers, g.ns, g.detail,
        );
    }
    for s in &storage_scans {
        println!(
            "{:>18} {:<16} n={:<8} |out|={:<7} columnar {:>12} ns  rowwise {:>12} ns  ({:.1}x)",
            "storage_1m",
            s.name,
            s.papers,
            s.rows_out,
            s.columnar_ns,
            s.rowwise_ns,
            s.rowwise_ns as f64 / s.columnar_ns.max(1) as f64,
        );
    }
    for s in &storage_snaps {
        println!(
            "{:>18} {:<16} n={:<8} sets={:<4} {:>9} B  save {:>11} ns  load {:>11} ns  re-warm {:>12} ns  ({:.1}x)",
            "storage_1m",
            "snapshot",
            s.papers,
            s.sets,
            s.snapshot_bytes,
            s.save_ns,
            s.load_ns,
            s.rewarm_ns,
            s.rewarm_ns as f64 / s.load_ns.max(1) as f64,
        );
    }
    for s in &storage_million {
        println!(
            "{:>18} {:<16} n={:<8} {:>12} ns  ({})",
            "storage_1m", s.phase, s.papers, s.ns, s.detail,
        );
    }
    if measure_scaling {
        for s in &scaling {
            println!(
                "{:>18} {:<16} threads={:<3} n={:<6} {:>12} ns  ({:.2}x vs 1 worker, {cores} cores; tasks={} steals={} probes={})",
                "scaling",
                s.phase,
                s.threads,
                s.papers,
                s.ns,
                scaling_speedup(&scaling, s),
                s.tasks,
                s.steals,
                s.idle_probes,
            );
        }
    } else if scaling_requested {
        println!(
            "{:>18} skipped: available_parallelism=1 (spawn overhead is not a scaling curve)",
            "scaling"
        );
    }
    for m in &mem {
        println!(
            "{:>18} {:<22} n={:<6} |set|={:<6} [{:<6}] adaptive {:>8} B  bitset {:>8} B",
            "memory",
            m.name,
            m.papers,
            m.cardinality,
            m.container,
            m.adaptive_bytes,
            m.bitset_bytes
        );
    }
    eprintln!("wrote {out_path}");

    let Some(baseline_path) = baseline_path else {
        println!("\n(no baseline BENCH_PR*.json found — skipping delta and regression guard)");
        return;
    };
    if baseline_path == out_path {
        eprintln!(
            "baseline and output are the same file ({out_path}) — a report never \
             guards against itself; pass a distinct baseline"
        );
        std::process::exit(1);
    }
    let Ok(contents) = std::fs::read_to_string(&baseline_path) else {
        println!("\n(no {baseline_path} found — skipping delta and regression guard)");
        return;
    };
    let baseline_rows: Vec<BaselineRow> = contents.lines().filter_map(parse_result_row).collect();
    print_delta(&baseline_path, &baseline_rows, &rows);
    if !regression_guard(&baseline_path, &baseline_rows, &rows) {
        std::process::exit(1);
    }
}

/// Speedup of a scaling row over the 1-worker run of the same phase and
/// corpus size.
fn scaling_speedup(rows: &[ScalingRow], row: &ScalingRow) -> f64 {
    rows.iter()
        .find(|r| r.phase == row.phase && r.papers == row.papers && r.threads == 1)
        .map_or(1.0, |base| base.ns as f64 / row.ns.max(1) as f64)
}

/// One parsed baseline result row: `(section, name, papers, engine_ns,
/// control_ns)`. `engine_ns` is the baseline's engine-under-test time
/// (`adaptive_ns`, or `bitset_ns` for PR 1-era files); `control_ns` is
/// the frozen PR 1 bitset engine's time in that same baseline run, when
/// the file recorded both.
type BaselineRow = (String, String, usize, u128, Option<u128>);

/// Prints a side-by-side delta of this run against the baseline report:
/// for every `(section, name, papers)` row the baseline measured,
/// compare its engine time with today's adaptive engine.
fn print_delta(baseline_path: &str, baseline_rows: &[BaselineRow], rows: &[Row]) {
    println!("\n== delta vs {baseline_path} (baseline engine → this run's adaptive engine) ==");
    let mut matched = 0usize;
    for (section, name, papers, base_ns, _) in baseline_rows {
        let Some(row) = rows
            .iter()
            .find(|r| r.section == section && r.name == *name && r.papers == *papers)
        else {
            continue;
        };
        matched += 1;
        let ratio = *base_ns as f64 / row.adaptive_ns.max(1) as f64;
        println!(
            "{:>16} {:<14} n={:<6} base {:>12} ns → now {:>12} ns  ({:>5.2}x {})",
            section,
            name,
            papers,
            base_ns,
            row.adaptive_ns,
            if ratio >= 1.0 { ratio } else { 1.0 / ratio },
            if ratio >= 1.0 { "faster" } else { "slower" },
        );
    }
    if matched == 0 {
        println!("(no comparable rows found in {baseline_path})");
    }
}

/// The bench-regression gate: every headline row (`pairwise_build`,
/// `peps_top_k`) of the baseline must still exist in this run and must
/// not regress by more than [`GUARD_MAX_REGRESSION`]. A baseline
/// headline row with no counterpart in the current run fails the gate
/// too — a renamed or dropped row must update the baseline, not dodge
/// it. Returns `false` (→ exit 1) on any breach.
///
/// Regression is measured **normalised by the frozen control engine**
/// whenever both runs recorded it: the PR 1 pure-bitmap generation is
/// guaranteed unchanged by the ROADMAP guardrails and is re-measured
/// under identical conditions in every report, so comparing
/// `adaptive/bitset` ratios across runs cancels host-wide drift
/// (thermal state, noisy neighbours on shared runners) that raw
/// wall-clock comparison would misreport as a code regression. For
/// PR 1-era baselines without a recorded control, raw wall-clock is the
/// fallback.
fn regression_guard(baseline_path: &str, baseline_rows: &[BaselineRow], rows: &[Row]) -> bool {
    println!(
        "\n== regression guard vs {baseline_path} (headline rows, {:.0}% budget, \
         control-normalised where possible) ==",
        (GUARD_MAX_REGRESSION - 1.0) * 100.0
    );
    // A partial run (BENCH_SIZES override) only guards the sizes it
    // measured; within a measured size, every baseline headline row
    // must match.
    let measured_sizes: std::collections::HashSet<usize> = rows.iter().map(|r| r.papers).collect();
    let mut checked = 0usize;
    let mut ok = true;
    for (section, name, papers, base_ns, base_control_ns) in baseline_rows {
        if !HEADLINE_SECTIONS.contains(&section.as_str()) || !measured_sizes.contains(papers) {
            continue;
        }
        checked += 1;
        let Some(row) = rows
            .iter()
            .find(|r| r.section == section && r.name == *name && r.papers == *papers)
        else {
            println!(
                "  MISS {:<16} {:<14} n={:<6} baseline row has no counterpart in this run",
                section, name, papers
            );
            ok = false;
            continue;
        };
        let raw = row.adaptive_ns.max(1) as f64 / (*base_ns).max(1) as f64;
        let (ratio, how) = match base_control_ns {
            Some(control) if *control > 0 && row.bitset_ns > 0 => {
                let current = row.adaptive_ns.max(1) as f64 / row.bitset_ns as f64;
                let baseline = (*base_ns).max(1) as f64 / *control as f64;
                (current / baseline, "vs-control")
            }
            _ => (raw, "raw"),
        };
        let breached = ratio > GUARD_MAX_REGRESSION;
        println!(
            "  {} {:<16} {:<14} n={:<6} {:>12} ns vs {:>12} ns baseline ({:.2}x {how}, {:.2}x raw)",
            if breached { "FAIL" } else { "ok  " },
            section,
            name,
            papers,
            row.adaptive_ns,
            base_ns,
            ratio,
            raw,
        );
        ok &= !breached;
    }
    if checked == 0 {
        println!("  (baseline has no headline rows — nothing to guard)");
    } else if ok {
        println!("  regression guard passed ({checked} rows)");
    } else {
        eprintln!("regression guard FAILED against {baseline_path}");
    }
    ok
}

/// Extracts one [`BaselineRow`] from a baseline result line — a flat
/// JSON object per line, parsed without a JSON dependency. The engine
/// time is `adaptive_ns` (PR 2+ reports), falling back to `bitset_ns`
/// for PR 1-era files; the control time is `bitset_ns` only when the
/// line records it *alongside* `adaptive_ns` (in a PR 1 file `bitset_ns`
/// *is* the engine, not a control).
fn parse_result_row(line: &str) -> Option<BaselineRow> {
    let section = json_str_field(line, "section")?;
    let name = json_str_field(line, "name")?;
    let papers = json_num_field(line, "papers")?;
    let adaptive = json_num_field(line, "adaptive_ns");
    let bitset = json_num_field(line, "bitset_ns");
    let ns = adaptive.or(bitset)?;
    let control = adaptive.and(bitset);
    Some((section, name, papers as usize, ns, control))
}

fn json_str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_owned())
}

fn json_num_field(line: &str, key: &str) -> Option<u128> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}
