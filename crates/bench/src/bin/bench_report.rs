//! Emits `BENCH_PR2.json` — the machine-readable perf snapshot of the
//! PR 2 adaptive tuple-set rewrite — and prints a side-by-side delta
//! against the checked-in `BENCH_PR1.json` so regressions on the dense
//! path are visible at a glance.
//!
//! Measures, per corpus size (default 2 000 and 20 000 papers; override
//! with `BENCH_SIZES=2000,20000`), across the **three generations** of
//! set algebra (adaptive `TupleSet` / pure `BitSet` / seed
//! `HashSet<Value>`, all memo-warmed so the timed regions are pure set
//! algebra):
//!
//! * `pairwise_build` — `PairwiseCache::build` wall time, plus the cold
//!   adaptive build including its `n` SQL queries;
//! * `peps_top_k` — `Peps::top_k` latency (complete variant, k = 10 and
//!   100) for all three engines over the same pairwise cache;
//! * `set_algebra` — `and_count`/`or`/`and_not` micro-ops over the
//!   profile's two **densest** tuple sets (bitmap containers: the
//!   adaptive engine must stay within noise of PR 1);
//! * `set_algebra_sparse` — the same micro-ops over the two **sparsest**
//!   non-empty tuple sets (array containers: the long tail where the
//!   adaptive representation wins), with per-set container bytes in the
//!   `memory` section.
//!
//! Usage: `cargo run --release -p hypre-bench --bin bench_report
//! [out.json [pr1.json]]`

use std::fmt::Write as _;
use std::time::Duration;

use hypre_bench::baseline::{HashSetAlgebra, SeedPeps};
use hypre_bench::bitset_baseline::{BitsetAlgebra, BitsetPeps};
use hypre_bench::timing::median_time;
use hypre_bench::Fixture;
use hypre_core::prelude::*;

/// One comparison row: median nanoseconds per generation.
struct Row {
    section: &'static str,
    name: String,
    papers: usize,
    adaptive_ns: u128,
    bitset_ns: u128,
    hashset_ns: u128,
}

impl Row {
    /// Speedup of the adaptive engine over the pure-bitmap generation.
    fn vs_bitset(&self) -> f64 {
        self.bitset_ns as f64 / self.adaptive_ns.max(1) as f64
    }

    /// Speedup of the adaptive engine over the seed generation.
    fn vs_hashset(&self) -> f64 {
        self.hashset_ns as f64 / self.adaptive_ns.max(1) as f64
    }
}

/// One memory row: container bytes for a profile tuple set under both
/// dense generations.
struct MemRow {
    papers: usize,
    name: String,
    cardinality: usize,
    adaptive_bytes: usize,
    bitset_bytes: usize,
}

fn measure<R>(f: impl FnMut() -> R) -> u128 {
    median_time(5, Duration::from_millis(120), f).as_nanos()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let out_path = args.next().unwrap_or_else(|| "BENCH_PR2.json".to_owned());
    let pr1_path = args.next().unwrap_or_else(|| "BENCH_PR1.json".to_owned());
    let mut sizes: Vec<usize> = std::env::var("BENCH_SIZES")
        .unwrap_or_else(|_| "2000,20000".to_owned())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .collect();
    if sizes.is_empty() {
        eprintln!("BENCH_SIZES contained no usable sizes; using 2000,20000");
        sizes = vec![2_000, 20_000];
    }

    let mut rows: Vec<Row> = Vec::new();
    let mut mem: Vec<MemRow> = Vec::new();
    let mut extra = String::new();

    for &n in &sizes {
        eprintln!("building {n}-paper fixture…");
        let fx = Fixture::papers(n);
        let atoms = fx.graph.positive_profile(fx.rich_user);
        eprintln!("  profile: {} preferences", atoms.len());

        // Cold adaptive build (includes the n SQL queries).
        let cold_ns = measure(|| {
            let fresh = fx.executor();
            PairwiseCache::build(&atoms, &fresh)
                .unwrap()
                .applicable_count()
        });
        let _ = write!(
            extra,
            "{}{{\"section\":\"pairwise_build_cold\",\"papers\":{n},\"adaptive_ns\":{cold_ns}}}",
            if extra.is_empty() { "" } else { ",\n    " },
        );

        // Warm engines: the comparison isolates set algebra.
        let exec = fx.executor();
        let hashset = HashSetAlgebra::new(&exec);
        let bitset = BitsetAlgebra::new(&exec);
        hashset.warm(&atoms).unwrap();
        bitset.warm(&atoms).unwrap();
        let pairs = PairwiseCache::build(&atoms, &exec).unwrap();

        rows.push(Row {
            section: "pairwise_build",
            name: "warm".to_owned(),
            papers: n,
            adaptive_ns: measure(|| {
                PairwiseCache::build(&atoms, &exec)
                    .unwrap()
                    .applicable_count()
            }),
            bitset_ns: measure(|| bitset.pairwise_counts(&atoms).unwrap().len()),
            hashset_ns: measure(|| hashset.pairwise_counts(&atoms).unwrap().len()),
        });

        let peps = Peps::new(&atoms, &exec, &pairs, PepsVariant::Complete);
        let dense_peps = BitsetPeps::new(&atoms, &bitset, &pairs, PepsVariant::Complete);
        let seed_peps = SeedPeps::new(&atoms, &hashset, &pairs, PepsVariant::Complete);
        for k in [10usize, 100] {
            rows.push(Row {
                section: "peps_top_k",
                name: format!("complete_k{k}"),
                papers: n,
                adaptive_ns: measure(|| peps.top_k(k).unwrap().len()),
                bitset_ns: measure(|| dense_peps.top_k(k).unwrap().len()),
                hashset_ns: measure(|| seed_peps.top_k(k).unwrap().len()),
            });
        }

        // Operand picks: densest pair (bitmap containers) and sparsest
        // non-empty pair (array containers).
        let counts: Vec<u64> = atoms
            .iter()
            .map(|a| exec.count(&a.predicate).unwrap())
            .collect();
        let mut idx: Vec<usize> = (0..atoms.len()).filter(|&i| counts[i] > 0).collect();
        idx.sort_by_key(|&i| std::cmp::Reverse(counts[i]));
        let mut regimes = Vec::new();
        if idx.len() >= 2 {
            regimes.push(("set_algebra", idx[0], idx[1]));
        } else {
            eprintln!("  fewer than two non-empty tuple sets; skipping set_algebra sections");
        }
        if idx.len() >= 4 {
            // Distinct from the dense pair, or the "sparse" rows would
            // just re-measure the dense operands under a new label.
            regimes.push(("set_algebra_sparse", idx[idx.len() - 1], idx[idx.len() - 2]));
        } else if idx.len() >= 2 {
            eprintln!(
                "  profile too small for a distinct sparse pair; skipping set_algebra_sparse"
            );
        }
        for (section, i, j) in regimes {
            let (pa, pb) = (&atoms[i].predicate, &atoms[j].predicate);
            let (aa, ab) = (exec.tuple_set(pa).unwrap(), exec.tuple_set(pb).unwrap());
            let (ba, bb) = (bitset.tuple_set(pa).unwrap(), bitset.tuple_set(pb).unwrap());
            let (ha, hb) = (
                hashset.tuple_set(pa).unwrap(),
                hashset.tuple_set(pb).unwrap(),
            );
            eprintln!(
                "  {section}: operand sets of {} and {} tuples ({} / {} containers)",
                aa.count(),
                ab.count(),
                if aa.is_array() { "array" } else { "bitmap" },
                if ab.is_array() { "array" } else { "bitmap" },
            );
            for (set_name, a_set, b_set) in [("a", &aa, &ba), ("b", &ab, &bb)] {
                mem.push(MemRow {
                    papers: n,
                    name: format!("{section}/{set_name}"),
                    cardinality: a_set.count(),
                    adaptive_bytes: a_set.heap_bytes(),
                    bitset_bytes: b_set.heap_bytes(),
                });
            }

            rows.push(Row {
                section,
                name: "and_count".to_owned(),
                papers: n,
                adaptive_ns: measure(|| aa.and_count(&ab)),
                bitset_ns: measure(|| ba.and_count(&bb)),
                hashset_ns: measure(|| ha.iter().filter(|v| hb.contains(*v)).count()),
            });
            rows.push(Row {
                section,
                name: "or".to_owned(),
                papers: n,
                adaptive_ns: measure(|| aa.or(&ab).count()),
                bitset_ns: measure(|| ba.or(&bb).count()),
                hashset_ns: measure(|| ha.union(&hb).count()),
            });
            rows.push(Row {
                section,
                name: "and_not".to_owned(),
                papers: n,
                adaptive_ns: measure(|| aa.and_not(&ab).count()),
                bitset_ns: measure(|| ba.and_not(&bb).count()),
                hashset_ns: measure(|| ha.difference(&hb).count()),
            });
        }
    }

    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"bench\": \"PR2 adaptive tuple sets\",\n  \"sizes\": {:?},\n  \"cold\": [\n    {extra}\n  ],\n  \"results\": [\n",
        sizes
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"section\":\"{}\",\"name\":\"{}\",\"papers\":{},\"adaptive_ns\":{},\"bitset_ns\":{},\"hashset_ns\":{},\"vs_bitset\":{:.2},\"vs_hashset\":{:.2}}}{}",
            r.section,
            r.name,
            r.papers,
            r.adaptive_ns,
            r.bitset_ns,
            r.hashset_ns,
            r.vs_bitset(),
            r.vs_hashset(),
            if i + 1 == rows.len() { "" } else { "," },
        );
    }
    json.push_str("  ],\n  \"memory\": [\n");
    for (i, m) in mem.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"papers\":{},\"set\":\"{}\",\"cardinality\":{},\"adaptive_bytes\":{},\"bitset_bytes\":{}}}{}",
            m.papers,
            m.name,
            m.cardinality,
            m.adaptive_bytes,
            m.bitset_bytes,
            if i + 1 == mem.len() { "" } else { "," },
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write report");
    println!("{json}");
    for r in &rows {
        println!(
            "{:>18} {:<14} n={:<6} adaptive {:>10} ns  bitset {:>10} ns  hashset {:>12} ns  vs-bitset {:>6.1}x  vs-hashset {:>7.1}x",
            r.section,
            r.name,
            r.papers,
            r.adaptive_ns,
            r.bitset_ns,
            r.hashset_ns,
            r.vs_bitset(),
            r.vs_hashset(),
        );
    }
    for m in &mem {
        println!(
            "{:>18} {:<22} n={:<6} |set|={:<6} adaptive {:>8} B  bitset {:>8} B",
            "memory", m.name, m.papers, m.cardinality, m.adaptive_bytes, m.bitset_bytes
        );
    }
    print_delta_vs_pr1(&pr1_path, &rows);
    eprintln!("wrote {out_path}");
}

/// Prints a side-by-side delta of this run against the checked-in PR 1
/// report: for every `(section, name, papers)` row PR 1 measured, compare
/// its engine time (`bitset_ns`) with today's adaptive engine.
fn print_delta_vs_pr1(pr1_path: &str, rows: &[Row]) {
    let Ok(pr1) = std::fs::read_to_string(pr1_path) else {
        println!("\n(no {pr1_path} found — skipping PR1 delta)");
        return;
    };
    println!("\n== delta vs {pr1_path} (PR1 engine → PR2 adaptive engine) ==");
    let mut matched = 0usize;
    for line in pr1.lines() {
        let Some((section, name, papers, pr1_ns)) = parse_pr1_row(line) else {
            continue;
        };
        let Some(row) = rows
            .iter()
            .find(|r| r.section == section && r.name == name && r.papers == papers)
        else {
            continue;
        };
        matched += 1;
        let ratio = pr1_ns as f64 / row.adaptive_ns.max(1) as f64;
        println!(
            "{:>16} {:<14} n={:<6} pr1 {:>12} ns → pr2 {:>12} ns  ({:>5.2}x {})",
            section,
            name,
            papers,
            pr1_ns,
            row.adaptive_ns,
            if ratio >= 1.0 { ratio } else { 1.0 / ratio },
            if ratio >= 1.0 { "faster" } else { "slower" },
        );
    }
    if matched == 0 {
        println!("(no comparable rows found in {pr1_path})");
    }
}

/// Extracts `(section, name, papers, bitset_ns)` from one PR 1 result
/// line — a flat JSON object per line, parsed without a JSON dependency.
fn parse_pr1_row(line: &str) -> Option<(String, String, usize, u128)> {
    let section = json_str_field(line, "section")?;
    let name = json_str_field(line, "name")?;
    let papers = json_num_field(line, "papers")?;
    let ns = json_num_field(line, "bitset_ns")?;
    Some((section, name, papers as usize, ns))
}

fn json_str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_owned())
}

fn json_num_field(line: &str, key: &str) -> Option<u128> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}
