//! Emits `BENCH_PR1.json` — the machine-readable perf snapshot of the
//! PR 1 bitset rewrite, so future PRs have a trajectory to compare
//! against.
//!
//! Measures, per corpus size (default 2 000 and 20 000 papers; override
//! with `BENCH_SIZES=2000,20000`):
//!
//! * `pairwise_build` — `PairwiseCache::build` wall time, bitset engine
//!   vs the `HashSet<Value>` baseline (memo caches pre-warmed on both
//!   sides, so the timed region is pure set algebra), plus the cold
//!   bitset build including its `n` SQL queries;
//! * `peps_top_k` — `Peps::top_k` latency (complete variant, k = 10 and
//!   100) vs the HashMap-ranked baseline loop over the same combination
//!   list;
//! * `set_algebra` — the `and_count`/`or`/`and_not` micro-ops over the
//!   profile's two densest tuple sets.
//!
//! Usage: `cargo run --release -p hypre-bench --bin bench_report [out.json]`

use std::fmt::Write as _;
use std::time::Duration;

use hypre_bench::baseline::{HashSetAlgebra, SeedPeps};
use hypre_bench::timing::median_time;
use hypre_bench::Fixture;
use hypre_core::prelude::*;

/// One comparison row: engine vs baseline median nanoseconds.
struct Row {
    section: &'static str,
    name: String,
    papers: usize,
    bitset_ns: u128,
    hashset_ns: u128,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.hashset_ns as f64 / self.bitset_ns.max(1) as f64
    }
}

fn measure<R>(f: impl FnMut() -> R) -> u128 {
    median_time(5, Duration::from_millis(120), f).as_nanos()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR1.json".to_owned());
    let mut sizes: Vec<usize> = std::env::var("BENCH_SIZES")
        .unwrap_or_else(|_| "2000,20000".to_owned())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .collect();
    if sizes.is_empty() {
        eprintln!("BENCH_SIZES contained no usable sizes; using 2000,20000");
        sizes = vec![2_000, 20_000];
    }

    let mut rows: Vec<Row> = Vec::new();
    let mut extra = String::new();

    for &n in &sizes {
        eprintln!("building {n}-paper fixture…");
        let fx = Fixture::papers(n);
        let atoms = fx.graph.positive_profile(fx.rich_user);
        eprintln!("  profile: {} preferences", atoms.len());

        // Cold bitset build (includes the n SQL queries).
        let cold_ns = measure(|| {
            let fresh = fx.executor();
            PairwiseCache::build(&atoms, &fresh)
                .unwrap()
                .applicable_count()
        });
        let _ = write!(
            extra,
            "{}{{\"section\":\"pairwise_build_cold\",\"papers\":{n},\"bitset_ns\":{cold_ns}}}",
            if extra.is_empty() { "" } else { ",\n    " },
        );

        // Warm engines: the comparison isolates set algebra.
        let exec = fx.executor();
        let baseline = HashSetAlgebra::new(&exec);
        baseline.warm(&atoms).unwrap();
        let pairs = PairwiseCache::build(&atoms, &exec).unwrap();

        rows.push(Row {
            section: "pairwise_build",
            name: "warm".to_owned(),
            papers: n,
            bitset_ns: measure(|| {
                PairwiseCache::build(&atoms, &exec)
                    .unwrap()
                    .applicable_count()
            }),
            hashset_ns: measure(|| baseline.pairwise_counts(&atoms).unwrap().len()),
        });

        let peps = Peps::new(&atoms, &exec, &pairs, PepsVariant::Complete);
        let seed = SeedPeps::new(&atoms, &baseline, &pairs, PepsVariant::Complete);
        for k in [10usize, 100] {
            rows.push(Row {
                section: "peps_top_k",
                name: format!("complete_k{k}"),
                papers: n,
                bitset_ns: measure(|| peps.top_k(k).unwrap().len()),
                hashset_ns: measure(|| seed.top_k(k).unwrap().len()),
            });
        }

        // Set-algebra micro-ops over the two densest tuple sets.
        let mut idx: Vec<usize> = (0..atoms.len()).collect();
        let counts: Vec<u64> = atoms
            .iter()
            .map(|a| exec.count(&a.predicate).unwrap())
            .collect();
        idx.sort_by_key(|&i| std::cmp::Reverse(counts[i]));
        let (pa, pb) = (&atoms[idx[0]].predicate, &atoms[idx[1]].predicate);
        let (sa, sb) = (exec.tuple_set(pa).unwrap(), exec.tuple_set(pb).unwrap());
        let (ha, hb) = (
            baseline.tuple_set(pa).unwrap(),
            baseline.tuple_set(pb).unwrap(),
        );
        eprintln!("  densest sets: {} and {} tuples", sa.count(), sb.count());

        rows.push(Row {
            section: "set_algebra",
            name: "and_count".to_owned(),
            papers: n,
            bitset_ns: measure(|| sa.and_count(&sb)),
            hashset_ns: measure(|| ha.iter().filter(|v| hb.contains(*v)).count()),
        });
        rows.push(Row {
            section: "set_algebra",
            name: "or".to_owned(),
            papers: n,
            bitset_ns: measure(|| sa.or(&sb).count()),
            hashset_ns: measure(|| ha.union(&hb).count()),
        });
        rows.push(Row {
            section: "set_algebra",
            name: "and_not".to_owned(),
            papers: n,
            bitset_ns: measure(|| sa.and_not(&sb).count()),
            hashset_ns: measure(|| ha.difference(&hb).count()),
        });
    }

    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"bench\": \"PR1 bitset engine\",\n  \"sizes\": {:?},\n  \"cold\": [\n    {extra}\n  ],\n  \"results\": [\n",
        sizes
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"section\":\"{}\",\"name\":\"{}\",\"papers\":{},\"bitset_ns\":{},\"hashset_ns\":{},\"speedup\":{:.2}}}{}",
            r.section,
            r.name,
            r.papers,
            r.bitset_ns,
            r.hashset_ns,
            r.speedup(),
            if i + 1 == rows.len() { "" } else { "," },
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write report");
    println!("{json}");
    for r in &rows {
        println!(
            "{:>16} {:<14} n={:<6} bitset {:>12} ns  hashset {:>12} ns  speedup {:>7.1}x",
            r.section,
            r.name,
            r.papers,
            r.bitset_ns,
            r.hashset_ns,
            r.speedup()
        );
    }
    eprintln!("wrote {out_path}");
}
