//! The pre-interning `HashSet<Value>` set-algebra baseline.
//!
//! PR 1 replaced the executor's tuple sets with interned-id bitsets. This
//! module keeps the *old* evaluation strategy alive — per-predicate
//! `HashSet<Value>` materialisation, hash-probe intersections, and a
//! `HashMap<Value, f64>` ranked map — so benches can report the
//! bitset-vs-hashset speedup on identical inputs, and equivalence tests
//! can assert the rewrite changed nothing observable.
//!
//! The baseline issues its own queries through
//! `SelectQuery::distinct_values` (the seed's exact feed) and keeps its
//! own memo cache, so it never touches the executor's interner. Like the
//! PR 1 bitmap generation ([`crate::bitset_baseline`]), it is frozen:
//! the PR 4 hot-path work (run containers, SIMD-width kernels, COW
//! expansion, sharded rounds) lands only in the adaptive engine, and the
//! three-way equivalence suites pin all generations byte-identical.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use hypre_core::prelude::*;
use relstore::{Predicate, Value};

/// A memoising `HashSet<Value>` evaluator over the same base query an
/// [`Executor`] runs — the seed implementation, preserved.
pub struct HashSetAlgebra<'a, 'db> {
    exec: &'a Executor<'db>,
    cache: RefCell<HashMap<String, Rc<HashSet<Value>>>>,
}

impl<'a, 'db> HashSetAlgebra<'a, 'db> {
    /// Wraps an executor (for its database and base query only).
    pub fn new(exec: &'a Executor<'db>) -> Self {
        HashSetAlgebra {
            exec,
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// The seed's tuple-set materialisation: one query per distinct
    /// predicate, values cloned into a `HashSet`.
    pub fn tuple_set(&self, unit: &Predicate) -> Result<Rc<HashSet<Value>>> {
        let key = unit.canonical();
        if let Some(set) = self.cache.borrow().get(&key) {
            return Ok(Rc::clone(set));
        }
        let values = self
            .exec
            .base()
            .select_for(unit)
            .distinct_values(self.exec.database(), &self.exec.base().key)?;
        let set: Rc<HashSet<Value>> = Rc::new(values.into_iter().collect());
        self.cache.borrow_mut().insert(key, Rc::clone(&set));
        Ok(set)
    }

    /// Pre-warms the memo cache for a profile (kept outside timed regions
    /// so benches isolate set algebra from SQL).
    pub fn warm(&self, atoms: &[PrefAtom]) -> Result<()> {
        for a in atoms {
            self.tuple_set(&a.predicate)?;
        }
        Ok(())
    }

    /// The seed's AND evaluation: smallest-first hash-probe intersection.
    pub fn and_set(&self, units: &[&Predicate]) -> Result<HashSet<Value>> {
        let mut sets = Vec::with_capacity(units.len());
        for u in units {
            sets.push(self.tuple_set(u)?);
        }
        sets.sort_by_key(|s| s.len());
        let Some(first) = sets.first() else {
            return Ok(HashSet::new());
        };
        let mut acc: HashSet<Value> = first.iter().cloned().collect();
        for s in &sets[1..] {
            acc.retain(|v| s.contains(v));
            if acc.is_empty() {
                break;
            }
        }
        Ok(acc)
    }

    /// The seed's mixed-clause evaluation: per-group unions, then
    /// smallest-first intersection.
    pub fn mixed_set(&self, groups: &[Vec<&Predicate>]) -> Result<HashSet<Value>> {
        let mut group_sets: Vec<HashSet<Value>> = Vec::with_capacity(groups.len());
        for group in groups {
            let mut union: HashSet<Value> = HashSet::new();
            for u in group {
                union.extend(self.tuple_set(u)?.iter().cloned());
            }
            group_sets.push(union);
        }
        group_sets.sort_by_key(HashSet::len);
        let Some(first) = group_sets.first() else {
            return Ok(HashSet::new());
        };
        let mut acc = first.clone();
        for s in &group_sets[1..] {
            acc.retain(|v| s.contains(v));
            if acc.is_empty() {
                break;
            }
        }
        Ok(acc)
    }

    /// The seed's pairwise-cache build: per-pair hash-probe intersection
    /// counts. Returns `(i, j, count)` triples in `(i, j)` order.
    pub fn pairwise_counts(&self, atoms: &[PrefAtom]) -> Result<Vec<(usize, usize, u64)>> {
        let mut sets = Vec::with_capacity(atoms.len());
        for a in atoms {
            sets.push(self.tuple_set(&a.predicate)?);
        }
        let mut out = Vec::with_capacity(atoms.len() * atoms.len().saturating_sub(1) / 2);
        for ai in 0..atoms.len() {
            for bj in ai + 1..atoms.len() {
                let (small, large) = if sets[ai].len() <= sets[bj].len() {
                    (&sets[ai], &sets[bj])
                } else {
                    (&sets[bj], &sets[ai])
                };
                let count = small.iter().filter(|v| large.contains(*v)).count() as u64;
                out.push((ai, bj, count));
            }
        }
        Ok(out)
    }

    /// The seed's brute-force ranking: `HashMap<Value, f64>` residual
    /// accumulation over per-atom tuple sets (the pre-dense
    /// `score_tuples`).
    pub fn score_tuples(&self, atoms: &[PrefAtom]) -> Result<Vec<(Value, f64)>> {
        let mut residual: HashMap<Value, f64> = HashMap::new();
        for atom in atoms {
            for tuple in self.tuple_set(&atom.predicate)?.iter() {
                *residual.entry(tuple.clone()).or_insert(1.0) *= 1.0 - atom.intensity;
            }
        }
        let mut out: Vec<(Value, f64)> = residual.into_iter().map(|(t, r)| (t, 1.0 - r)).collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        Ok(out)
    }

    /// The seed's PEPS scoring loop: re-ranks an already-computed ordered
    /// combination list through hash intersections and a
    /// `HashMap<Value, f64>` ranked map, truncated to `k`. Used as the
    /// like-for-like benchmark counterpart of [`Peps::top_k`]'s dense
    /// inner loop.
    pub fn rank_combinations(
        &self,
        atoms: &[PrefAtom],
        order: &[CombinationRecord],
        k: usize,
    ) -> Result<Vec<(Value, f64)>> {
        let mut ranked: HashMap<Value, f64> = HashMap::new();
        for combo in order.iter().filter(|c| c.applicable()) {
            let units: Vec<&Predicate> =
                combo.members.iter().map(|&m| &atoms[m].predicate).collect();
            for tuple in self.and_set(&units)? {
                ranked
                    .entry(tuple)
                    .and_modify(|v| *v = v.max(combo.intensity))
                    .or_insert(combo.intensity);
            }
        }
        let mut out: Vec<(Value, f64)> = ranked.into_iter().collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out.truncate(k);
        Ok(out)
    }
}

/// The seed's complete PEPS Top-K, preserved verbatim over the HashSet
/// algebra: per-round pair seeding, depth-first expansion with per-step
/// `and_set` applicability checks, a `HashMap<Value, f64>` ranked map and
/// the same early-termination rule. This is the true "before" of the
/// bitset rewrite — bench it against [`hypre_core::algo::peps::Peps`].
pub struct SeedPeps<'x, 'a, 'db> {
    atoms: &'x [PrefAtom],
    algebra: &'x HashSetAlgebra<'a, 'db>,
    pairs: &'x PairwiseCache,
    variant: PepsVariant,
}

impl<'x, 'a, 'db> SeedPeps<'x, 'a, 'db> {
    /// Creates the seed engine over a profile, a HashSet algebra and the
    /// (algebra-independent) pairwise cache.
    pub fn new(
        atoms: &'x [PrefAtom],
        algebra: &'x HashSetAlgebra<'a, 'db>,
        pairs: &'x PairwiseCache,
        variant: PepsVariant,
    ) -> Self {
        SeedPeps {
            atoms,
            algebra,
            pairs,
            variant,
        }
    }

    /// The seed's `ordered_combinations`.
    pub fn ordered_combinations(&self) -> Result<Vec<CombinationRecord>> {
        let mut emitted: HashSet<Vec<usize>> = HashSet::new();
        let mut order: Vec<CombinationRecord> = Vec::new();
        for s in 0..self.atoms.len() {
            self.run_round(s, &mut emitted, &mut order)?;
        }
        sort_order(&mut order);
        Ok(order)
    }

    /// The seed's `top_k`: `HashMap<Value, f64>` ranked map, hash-probe
    /// intersections per combination, identical round and termination
    /// logic to the dense engine.
    pub fn top_k(&self, k: usize) -> Result<Vec<(Value, f64)>> {
        assert!(k > 0, "k must be positive");
        let mut emitted: HashSet<Vec<usize>> = HashSet::new();
        let mut ranked: HashMap<Value, f64> = HashMap::new();
        for s in 0..self.atoms.len() {
            let mut round: Vec<CombinationRecord> = Vec::new();
            self.run_round(s, &mut emitted, &mut round)?;
            sort_order(&mut round);
            for combo in round.iter().filter(|c| c.applicable()) {
                let units: Vec<&Predicate> = combo
                    .members
                    .iter()
                    .map(|&m| &self.atoms[m].predicate)
                    .collect();
                for tuple in self.algebra.and_set(&units)? {
                    ranked
                        .entry(tuple)
                        .and_modify(|v| *v = v.max(combo.intensity))
                        .or_insert(combo.intensity);
                }
            }
            let threshold = self.atoms[s].intensity;
            if ranked.len() >= k && kth_best(&ranked, k) >= threshold {
                break;
            }
        }
        let mut out: Vec<(Value, f64)> = ranked.into_iter().collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out.truncate(k);
        Ok(out)
    }

    fn run_round(
        &self,
        s: usize,
        emitted: &mut HashSet<Vec<usize>>,
        out: &mut Vec<CombinationRecord>,
    ) -> Result<()> {
        let threshold = self.atoms[s].intensity;
        let seeds: Vec<(usize, usize, f64)> = self
            .pairs
            .entries()
            .iter()
            .filter(|e| e.applicable())
            .filter(|e| self.admits(e.i, e.j, e.intensity, threshold))
            .map(|e| (e.i, e.j, e.intensity))
            .collect();
        for (i, j, intensity) in seeds {
            let members = vec![i, j];
            if emitted.contains(&members) {
                continue;
            }
            self.expand(members, intensity, emitted, out)?;
        }
        let singleton = vec![s];
        if !emitted.contains(&singleton) {
            let tuples = self.algebra.tuple_set(&self.atoms[s].predicate)?.len() as u64;
            if tuples > 0 {
                emitted.insert(singleton.clone());
                out.push(CombinationRecord {
                    members: singleton,
                    predicate: self.atoms[s].predicate.clone(),
                    intensity: self.atoms[s].intensity,
                    tuples,
                });
            }
        }
        Ok(())
    }

    fn admits(&self, i: usize, j: usize, pair_intensity: f64, threshold: f64) -> bool {
        if pair_intensity > threshold {
            return true;
        }
        match self.variant {
            PepsVariant::Approximate => false,
            PepsVariant::Complete => {
                let mut residual = 1.0 - pair_intensity;
                for (m, atom) in self.atoms.iter().enumerate() {
                    if m != i && m != j && atom.intensity > 0.0 {
                        residual *= 1.0 - atom.intensity;
                    }
                }
                1.0 - residual > threshold
            }
        }
    }

    fn expand(
        &self,
        members: Vec<usize>,
        intensity: f64,
        emitted: &mut HashSet<Vec<usize>>,
        out: &mut Vec<CombinationRecord>,
    ) -> Result<()> {
        if !emitted.insert(members.clone()) {
            return Ok(());
        }
        let units: Vec<&Predicate> = members.iter().map(|&m| &self.atoms[m].predicate).collect();
        let tuples = self.algebra.and_set(&units)?.len() as u64;
        out.push(CombinationRecord {
            members: members.clone(),
            predicate: Predicate::all(members.iter().map(|&m| self.atoms[m].predicate.clone())),
            intensity,
            tuples,
        });
        let last = *members.last().expect("combinations are non-empty");
        let candidates: Vec<usize> = self
            .pairs
            .pairs_from(last)
            .map(|e| e.j)
            .filter(|m| !members.contains(m))
            .collect();
        for m in candidates {
            let mut ext_members = members.clone();
            ext_members.push(m);
            if emitted.contains(&ext_members) {
                continue;
            }
            let ext_units: Vec<&Predicate> = ext_members
                .iter()
                .map(|&i| &self.atoms[i].predicate)
                .collect();
            if !self.algebra.and_set(&ext_units)?.is_empty() {
                let ext_intensity = f_and(intensity, self.atoms[m].intensity);
                self.expand(ext_members, ext_intensity, emitted, out)?;
            }
        }
        Ok(())
    }
}

fn sort_order(order: &mut [CombinationRecord]) {
    order.sort_by(|a, b| {
        b.intensity
            .total_cmp(&a.intensity)
            .then_with(|| a.members.len().cmp(&b.members.len()))
            .then_with(|| a.members.cmp(&b.members))
    });
}

fn kth_best(ranked: &HashMap<Value, f64>, k: usize) -> f64 {
    let mut scores: Vec<f64> = ranked.values().copied().collect();
    scores.sort_by(|a, b| b.total_cmp(a));
    scores.get(k - 1).copied().unwrap_or(f64::NEG_INFINITY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::parse_predicate;

    #[test]
    fn baseline_agrees_with_bitset_engine_on_the_fixture() {
        let fx = crate::Fixture::small();
        let exec = fx.executor();
        let baseline = HashSetAlgebra::new(&exec);
        let atoms: Vec<PrefAtom> = fx
            .graph
            .positive_profile(fx.rich_user)
            .into_iter()
            .take(10)
            .collect();
        assert!(atoms.len() >= 4, "profile too small for the test");

        // unit sets
        for a in &atoms {
            let bits = exec.tuples(&a.predicate).unwrap();
            let hash = baseline.tuple_set(&a.predicate).unwrap();
            let mut hash_sorted: Vec<Value> = hash.iter().cloned().collect();
            hash_sorted.sort();
            assert_eq!(bits, hash_sorted, "unit set for {}", a.predicate);
        }

        // AND combinations
        let units: Vec<&Predicate> = atoms.iter().take(3).map(|a| &a.predicate).collect();
        let mut hash_and: Vec<Value> = baseline.and_set(&units).unwrap().into_iter().collect();
        hash_and.sort();
        assert_eq!(exec.tuples_and(&units).unwrap(), hash_and);

        // pairwise counts
        let cache = PairwiseCache::build(&atoms, &exec).unwrap();
        let counts = baseline.pairwise_counts(&atoms).unwrap();
        assert_eq!(cache.entries().len(), counts.len());
        for (entry, (i, j, count)) in cache.entries().iter().zip(counts) {
            assert_eq!((entry.i, entry.j, entry.count), (i, j, count));
        }
    }

    #[test]
    fn baseline_scoring_matches_dense_scoring() {
        let fx = crate::Fixture::small();
        let exec = fx.executor();
        let baseline = HashSetAlgebra::new(&exec);
        let atoms = fx.graph.positive_profile(fx.modest_user);
        let dense = score_tuples(&exec, &atoms).unwrap();
        let hash = baseline.score_tuples(&atoms).unwrap();
        assert_eq!(dense.len(), hash.len());
        for ((dt, dg), (ht, hg)) in dense.iter().zip(hash.iter()) {
            assert_eq!(dt, ht);
            assert!((dg - hg).abs() < 1e-12);
        }
    }

    #[test]
    fn seed_peps_is_byte_identical_to_dense_peps() {
        let fx = crate::Fixture::small();
        let exec = fx.executor();
        let baseline = HashSetAlgebra::new(&exec);
        let atoms: Vec<PrefAtom> = fx
            .graph
            .positive_profile(fx.rich_user)
            .into_iter()
            .take(12)
            .collect();
        let pairs = PairwiseCache::build(&atoms, &exec).unwrap();
        let dense = Peps::new(&atoms, &exec, &pairs, PepsVariant::Complete);
        let seed = SeedPeps::new(&atoms, &baseline, &pairs, PepsVariant::Complete);
        assert_eq!(
            dense.ordered_combinations().unwrap(),
            seed.ordered_combinations().unwrap()
        );
        for k in [1usize, 5, 50, 500] {
            assert_eq!(dense.top_k(k).unwrap(), seed.top_k(k).unwrap(), "k={k}");
        }
        // Approximate variant too.
        let dense = Peps::new(&atoms, &exec, &pairs, PepsVariant::Approximate);
        let seed = SeedPeps::new(&atoms, &baseline, &pairs, PepsVariant::Approximate);
        assert_eq!(dense.top_k(25).unwrap(), seed.top_k(25).unwrap());
    }

    #[test]
    fn mixed_set_matches_engine() {
        let fx = crate::Fixture::small();
        let exec = fx.executor();
        let baseline = HashSetAlgebra::new(&exec);
        let a = parse_predicate("dblp.year>=2005").unwrap();
        let b = parse_predicate("dblp.year>=2009").unwrap();
        let groups = [vec![&a, &b]];
        let bits = exec.mixed_set(&groups).unwrap();
        let hash = baseline.mixed_set(&groups).unwrap();
        assert_eq!(bits.count(), hash.len());
        let mut hash_sorted: Vec<Value> = hash.into_iter().collect();
        hash_sorted.sort();
        assert_eq!(exec.values_of(&bits), hash_sorted);
    }
}
