//! The multi-session serving harness shared by `bench_report`, the
//! `parallel` criterion bench and the determinism tests: N concurrent
//! sessions answering PEPS top-k, either **cold** (each session is a
//! fresh [`Executor`] that re-interns the corpus and re-runs every
//! profile query) or **shared** (each session reads one frozen
//! [`ProfileCache`] snapshot lock-free).
//!
//! Both shapes run their sessions under [`std::thread::scope`], so a
//! cold-vs-shared delta isolates what the snapshot actually buys
//! (interning + SQL + materialisation reuse) instead of conflating it
//! with thread-level parallelism.
//!
//! PR 7 adds the **batched** serving shape: `sessions` Top-K requests
//! drawn from a Zipf profile-popularity distribution (the realistic
//! many-users shape: a few hot profiles dominate), answered either
//! unbatched (every session runs its own rounds, fanned over a worker
//! pool) or through one [`BatchScheduler`] run that evaluates each
//! distinct profile identity once — the shared-expansion saving the
//! `batched_serving` rows of `bench_report` record.

use std::sync::Arc;

use hypre_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relstore::Database;

/// Serves `sessions` concurrent PEPS top-`k` requests, each from a
/// fresh executor (the cold path: per-session interning and SQL).
/// Returns the summed result lengths (a cheap checksum for benches).
pub fn serve_cold_concurrent(
    db: &Database,
    base: &BaseQuery,
    atoms: &[PrefAtom],
    sessions: usize,
    k: usize,
) -> usize {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|_| {
                scope.spawn(move || {
                    let exec = Executor::new(db, base.clone());
                    let pairs = PairwiseCache::build(atoms, &exec).expect("cold pairwise build");
                    Peps::new(atoms, &exec, &pairs, PepsVariant::Complete)
                        .top_k(k)
                        .expect("cold top-k")
                        .len()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

/// Serves `sessions` concurrent PEPS top-`k` requests, each from a
/// session executor over one shared snapshot (the serving path: zero
/// SQL for cached predicates). Returns the summed result lengths.
pub fn serve_shared_concurrent(
    db: &Database,
    cache: &Arc<ProfileCache>,
    atoms: &[PrefAtom],
    sessions: usize,
    k: usize,
) -> usize {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|_| {
                let cache = Arc::clone(cache);
                scope.spawn(move || {
                    let session =
                        Executor::with_cache(db, cache).expect("cache matches the corpus");
                    let pairs =
                        PairwiseCache::build(atoms, &session).expect("shared pairwise build");
                    Peps::new(atoms, &session, &pairs, PepsVariant::Complete)
                        .top_k(k)
                        .expect("shared top-k")
                        .len()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

/// Draws `draws` item indices from a Zipf(`exponent`) popularity over
/// `items` ranked items (rank 0 hottest), deterministically from
/// `seed`. Hand-rolled inverse-CDF sampling over the normalised
/// harmonic weights — the shimmed `rand` has no distribution module.
pub fn zipf_indices(items: usize, draws: usize, exponent: f64, seed: u64) -> Vec<usize> {
    assert!(items > 0, "zipf needs at least one item");
    let weights: Vec<f64> = (0..items)
        .map(|rank| 1.0 / ((rank + 1) as f64).powf(exponent))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..draws)
        .map(|_| {
            let mut point = rng.gen::<f64>() * total;
            for (idx, w) in weights.iter().enumerate() {
                point -= w;
                if point <= 0.0 {
                    return idx;
                }
            }
            items - 1
        })
        .collect()
}

/// Builds a `sessions`-strong serving mix: each session asks Top-`k`
/// over a profile drawn Zipf-popularly from `profiles`. The returned
/// requests are the common input to the unbatched and batched shapes.
pub fn zipf_session_mix(
    profiles: &[Vec<PrefAtom>],
    sessions: usize,
    k: usize,
    exponent: f64,
    seed: u64,
) -> Vec<BatchRequest> {
    zipf_indices(profiles.len(), sessions, exponent, seed)
        .into_iter()
        .map(|p| BatchRequest::new(profiles[p].clone(), k))
        .collect()
}

/// The unbatched baseline: every session opens its own executor over
/// the shared snapshot and runs its own PEPS rounds, fanned across
/// `workers` OS threads (sessions chunked, not thread-per-session —
/// 1000 threads would bench spawn overhead, not serving). Returns the
/// summed result lengths.
pub fn serve_unbatched_sessions(
    db: &Database,
    cache: &Arc<ProfileCache>,
    requests: &[BatchRequest],
    workers: usize,
) -> usize {
    let chunk = requests.len().div_ceil(workers.max(1)).max(1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .chunks(chunk)
            .map(|part| {
                let cache = Arc::clone(cache);
                scope.spawn(move || {
                    let session =
                        Executor::with_cache_pinned(db, cache).expect("cache matches the corpus");
                    part.iter()
                        .map(|req| {
                            let pairs = PairwiseCache::build(&req.atoms, &session)
                                .expect("unbatched pairwise build");
                            Peps::new(&req.atoms, &session, &pairs, req.variant)
                                .top_k(req.k)
                                .expect("unbatched top-k")
                                .len()
                        })
                        .sum::<usize>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

/// The batched shape: one [`BatchScheduler`] run evaluates each
/// distinct profile identity once and demultiplexes. Returns the
/// summed result lengths plus the batch's sharing stats.
pub fn serve_batched_sessions(
    db: &Database,
    cache: &Arc<ProfileCache>,
    requests: &[BatchRequest],
    parallelism: Parallelism,
) -> (usize, BatchStats) {
    let outcome = BatchScheduler::new(parallelism)
        .run(db, cache, requests)
        .expect("batched serving");
    let total = outcome
        .results
        .iter()
        .map(|r| r.as_ref().expect("batched top-k").len())
        .sum();
    (total, outcome.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fixture;

    #[test]
    fn cold_and_shared_serving_agree() {
        let fx = Fixture::small();
        let atoms = fx.graph.positive_profile(fx.rich_user);
        let warm = fx.executor();
        let _ = PairwiseCache::build(&atoms, &warm).unwrap();
        let cache = Arc::new(ProfileCache::snapshot(&warm));
        let cold = serve_cold_concurrent(&fx.db, warm.base(), &atoms, 3, 10);
        let shared = serve_shared_concurrent(&fx.db, &cache, &atoms, 3, 10);
        assert_eq!(cold, shared);
        assert_eq!(cold, 30, "3 sessions × top-10");
    }

    #[test]
    fn zipf_sampling_is_deterministic_and_head_heavy() {
        let a = zipf_indices(8, 500, 1.1, 42);
        let b = zipf_indices(8, 500, 1.1, 42);
        assert_eq!(a, b, "same seed, same draws");
        assert_ne!(a, zipf_indices(8, 500, 1.1, 43), "seed matters");
        assert!(a.iter().all(|&i| i < 8));
        let hottest = a.iter().filter(|&&i| i == 0).count();
        let coldest = a.iter().filter(|&&i| i == 7).count();
        assert!(
            hottest > coldest,
            "rank 0 ({hottest}) must dominate rank 7 ({coldest})"
        );
    }

    #[test]
    fn batched_and_unbatched_zipf_serving_agree() {
        let fx = Fixture::small();
        let rich = fx.graph.positive_profile(fx.rich_user);
        let modest = fx.graph.positive_profile(fx.modest_user);
        let profiles = crate::profile_variants(&rich, &modest);
        let warm = fx.executor();
        for profile in &profiles {
            for atom in profile {
                let _ = warm.tuple_set(&atom.predicate).unwrap();
            }
        }
        let cache = Arc::new(ProfileCache::snapshot(&warm));
        let mix = zipf_session_mix(&profiles, 120, 10, 1.1, 7);
        let unbatched = serve_unbatched_sessions(&fx.db, &cache, &mix, 4);
        let (batched, stats) =
            serve_batched_sessions(&fx.db, &cache, &mix, Parallelism::Sequential);
        assert_eq!(unbatched, batched, "same answers either way");
        assert_eq!(stats.requests, 120);
        assert!(
            stats.groups <= profiles.len(),
            "at most one evaluation per distinct profile"
        );
        assert_eq!(stats.shared, 120 - stats.groups);
        assert_eq!(stats.queries_run, 0, "fully warmed snapshot");
    }
}
