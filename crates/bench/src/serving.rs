//! The multi-session serving harness shared by `bench_report`, the
//! `parallel` criterion bench and the determinism tests: N concurrent
//! sessions answering PEPS top-k, either **cold** (each session is a
//! fresh [`Executor`] that re-interns the corpus and re-runs every
//! profile query) or **shared** (each session reads one frozen
//! [`ProfileCache`] snapshot lock-free).
//!
//! Both shapes run their sessions under [`std::thread::scope`], so a
//! cold-vs-shared delta isolates what the snapshot actually buys
//! (interning + SQL + materialisation reuse) instead of conflating it
//! with thread-level parallelism.

use std::sync::Arc;

use hypre_core::prelude::*;
use relstore::Database;

/// Serves `sessions` concurrent PEPS top-`k` requests, each from a
/// fresh executor (the cold path: per-session interning and SQL).
/// Returns the summed result lengths (a cheap checksum for benches).
pub fn serve_cold_concurrent(
    db: &Database,
    base: &BaseQuery,
    atoms: &[PrefAtom],
    sessions: usize,
    k: usize,
) -> usize {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|_| {
                scope.spawn(move || {
                    let exec = Executor::new(db, base.clone());
                    let pairs = PairwiseCache::build(atoms, &exec).expect("cold pairwise build");
                    Peps::new(atoms, &exec, &pairs, PepsVariant::Complete)
                        .top_k(k)
                        .expect("cold top-k")
                        .len()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

/// Serves `sessions` concurrent PEPS top-`k` requests, each from a
/// session executor over one shared snapshot (the serving path: zero
/// SQL for cached predicates). Returns the summed result lengths.
pub fn serve_shared_concurrent(
    db: &Database,
    cache: &Arc<ProfileCache>,
    atoms: &[PrefAtom],
    sessions: usize,
    k: usize,
) -> usize {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|_| {
                let cache = Arc::clone(cache);
                scope.spawn(move || {
                    let session =
                        Executor::with_cache(db, cache).expect("cache matches the corpus");
                    let pairs =
                        PairwiseCache::build(atoms, &session).expect("shared pairwise build");
                    Peps::new(atoms, &session, &pairs, PepsVariant::Complete)
                        .top_k(k)
                        .expect("shared top-k")
                        .len()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fixture;

    #[test]
    fn cold_and_shared_serving_agree() {
        let fx = Fixture::small();
        let atoms = fx.graph.positive_profile(fx.rich_user);
        let warm = fx.executor();
        let _ = PairwiseCache::build(&atoms, &warm).unwrap();
        let cache = Arc::new(ProfileCache::snapshot(&warm));
        let cold = serve_cold_concurrent(&fx.db, warm.base(), &atoms, 3, 10);
        let shared = serve_shared_concurrent(&fx.db, &cache, &atoms, 3, 10);
        assert_eq!(cold, shared);
        assert_eq!(cold, 30, "3 sessions × top-10");
    }
}
