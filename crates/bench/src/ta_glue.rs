//! Glue between a HYPRE profile and the TA baseline: builds the graded
//! lists of §7.6.1.
//!
//! The dissertation materialises one list per *attribute*:
//! `intensity_venue(user, paper, grade)` from the venue preferences, and
//! `intensity_author(user, paper, grade)` where a paper with several
//! preferred authors gets the `f∧`-composite of their intensities. The
//! final TA aggregate over the per-attribute grades is again `f∧`
//! (Eq. 4.3).

use std::collections::{BTreeMap, HashMap};

use hypre_core::prelude::{f_and_all, Executor, PrefAtom, Result};
use hypre_topk::GradedList;
use relstore::{ColRef, Value};

/// Groups a positive profile by constrained attribute and builds one
/// graded list per attribute group. Papers matching several preferences
/// within a group receive the `f∧` composite grade.
pub fn build_graded_lists(
    exec: &Executor<'_>,
    atoms: &[PrefAtom],
) -> Result<Vec<GradedList<Value>>> {
    // Group atoms by attribute set (venue vs author in the DBLP workload).
    let mut groups: BTreeMap<Vec<ColRef>, Vec<&PrefAtom>> = BTreeMap::new();
    for atom in atoms {
        let key: Vec<ColRef> = atom.predicate.attributes().into_iter().collect();
        groups.entry(key).or_default().push(atom);
    }
    let mut lists = Vec::with_capacity(groups.len());
    for (_, group) in groups {
        // residual[t] = ∏ (1 − intensity) over matching atoms
        let mut residual: HashMap<Value, f64> = HashMap::new();
        for atom in group {
            for tuple in exec.tuples(&atom.predicate)? {
                *residual.entry(tuple).or_insert(1.0) *= 1.0 - atom.intensity;
            }
        }
        lists.push(GradedList::new(
            residual.into_iter().map(|(t, r)| (t, 1.0 - r)),
        ));
    }
    Ok(lists)
}

/// The aggregation function the dissertation's TA instance uses.
pub fn f_and_agg(grades: &[f64]) -> f64 {
    f_and_all(grades.iter().copied())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypre_core::prelude::BaseQuery;
    use hypre_topk::threshold_algorithm;
    use relstore::{parse_predicate, DataType, Database, Schema};

    fn db() -> Database {
        let mut db = Database::new();
        let papers = db
            .create_table(
                "dblp",
                Schema::of(&[("pid", DataType::Int), ("venue", DataType::Str)]),
            )
            .unwrap();
        for (pid, venue) in [(1, "VLDB"), (2, "VLDB"), (3, "PODS")] {
            papers.insert(vec![pid.into(), venue.into()]).unwrap();
        }
        let link = db
            .create_table(
                "dblp_author",
                Schema::of(&[("pid", DataType::Int), ("aid", DataType::Int)]),
            )
            .unwrap();
        for (pid, aid) in [(1, 7), (1, 8), (2, 7), (3, 8)] {
            link.insert(vec![pid.into(), aid.into()]).unwrap();
        }
        db
    }

    #[test]
    fn one_list_per_attribute_with_composite_grades() {
        let db = db();
        let exec = Executor::new(&db, BaseQuery::dblp());
        let atoms = vec![
            PrefAtom::new(0, parse_predicate("dblp.venue='VLDB'").unwrap(), 0.6),
            PrefAtom::new(1, parse_predicate("dblp_author.aid=7").unwrap(), 0.5),
            PrefAtom::new(2, parse_predicate("dblp_author.aid=8").unwrap(), 0.4),
        ];
        let lists = build_graded_lists(&exec, &atoms).unwrap();
        assert_eq!(lists.len(), 2, "venue list + author list");
        // paper 1 has both preferred authors: composite f∧(0.5, 0.4) = 0.7
        let author_list = lists
            .iter()
            .find(|l| l.contains(&Value::Int(3)))
            .expect("author list grades paper 3");
        let g = author_list.grade(&Value::Int(1));
        assert!((g - 0.7).abs() < 1e-12, "composite author grade, got {g}");
        // TA over the lists ranks paper 1 first: f∧(0.6, 0.7) = 0.88
        let top = threshold_algorithm(&lists, 1, f_and_agg);
        assert_eq!(top[0].0, Value::Int(1));
        assert!((top[0].1 - (1.0 - 0.4 * 0.3)).abs() < 1e-12);
    }
}
