//! Plain-text table and series rendering for the `experiments` binary —
//! the output mirrors the dissertation's tables and plot series.

use std::fmt::Write as _;

/// A simple aligned-text table builder.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let hline = |out: &mut String| {
            for w in &widths {
                let _ = write!(out, "+{}", "-".repeat(w + 2));
            }
            out.push_str("+\n");
        };
        hline(&mut out);
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(out, "| {h:<width$} ", width = widths[i]);
        }
        out.push_str("|\n");
        hline(&mut out);
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                let _ = write!(out, "| {cell:<width$} ", width = widths[i]);
            }
            out.push_str("|\n");
        }
        hline(&mut out);
        out
    }
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Renders an `(x, y)` series as a compact text block, ten points per line.
pub fn render_series(label: &str, points: &[(f64, f64)]) -> String {
    let mut out = format!("{label} ({} points)\n", points.len());
    for chunk in points.chunks(5) {
        let line: Vec<String> = chunk
            .iter()
            .map(|(x, y)| format!("({x:.0}, {y:.4})"))
            .collect();
        let _ = writeln!(out, "  {}", line.join(" "));
    }
    out
}

/// Formats a float with four decimals.
pub fn f4(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a duration in milliseconds with two decimals.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.2} ms", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["Relation", "Cardinality"]);
        t.row(vec!["dblp".into(), "4000".into()]);
        t.row(vec!["dblp_author".into(), "8121".into()]);
        let r = t.render();
        assert!(r.contains("| dblp "));
        assert!(r.contains("| Relation "));
        assert_eq!(r.lines().filter(|l| l.starts_with('+')).count(), 3);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn series_chunks_points() {
        let pts: Vec<(f64, f64)> = (0..7).map(|i| (i as f64, i as f64 / 2.0)).collect();
        let s = render_series("fig", &pts);
        assert!(s.contains("7 points"));
        assert_eq!(s.lines().count(), 3, "header + two chunks");
    }

    #[test]
    fn formatters() {
        assert_eq!(f4(0.5), "0.5000");
        assert_eq!(ms(std::time::Duration::from_millis(1500)), "1500.00 ms");
    }
}
