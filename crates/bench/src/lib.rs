//! # hypre-bench — experiment harness for the HYPRE reproduction
//!
//! Shared infrastructure for the `experiments` binary (which regenerates
//! every table and figure of the dissertation's evaluation chapter) and
//! the Criterion micro-benches:
//!
//! * [`fixture`] — the seeded standard corpus + graph + study users;
//! * [`ta_glue`] — building the §7.6.1 graded lists for the TA baseline;
//! * [`report`] — paper-style text tables and series;
//! * [`experiments`] — one function per table/figure, returning printable
//!   structures so the binary, tests and benches share one implementation;
//! * [`baseline`] — the pre-interning `HashSet<Value>` set algebra (the
//!   seed generation), kept for three-way comparisons;
//! * [`bitset_baseline`] — the pure-bitmap `BitSet` algebra and PEPS (the
//!   PR 1 generation), kept so adaptive-vs-bitset-vs-hashset benches and
//!   equivalence tests can measure all three generations;
//! * [`timing`] — wall-clock helpers for the `bench_report` binary;
//! * [`serving`] — the concurrent multi-session harness (cold executors
//!   vs one shared `ProfileCache` snapshot, plus the PR 7 Zipf
//!   session mixes served unbatched vs through the batch scheduler)
//!   shared by `bench_report` and the `parallel` bench;
//! * [`ingest`] — append-only corpus splits (base + delta) for the
//!   live-ingest equivalence tests and the `ingest_delta` vs
//!   `full_rewarm` bench rows.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
pub mod bitset_baseline;
pub mod experiments;
pub mod fixture;
pub mod ingest;
pub mod report;
pub mod serving;
pub mod ta_glue;
pub mod timing;

pub use fixture::Fixture;

use hypre_core::prelude::PrefAtom;

/// Overlapping-and-disjoint profile variants derived from the two study
/// users' profiles — the distinct profile identities the Zipf serving
/// mixes draw from. Slices of a descending-intensity profile stay
/// descending; atoms are re-indexed so each variant is a well-formed
/// profile of its own.
pub fn profile_variants(rich: &[PrefAtom], modest: &[PrefAtom]) -> Vec<Vec<PrefAtom>> {
    let reindex = |atoms: &[PrefAtom]| -> Vec<PrefAtom> {
        atoms
            .iter()
            .enumerate()
            .map(|(i, a)| PrefAtom::new(i, a.predicate.clone(), a.intensity))
            .collect()
    };
    let mut variants = vec![reindex(rich), reindex(modest)];
    if rich.len() > 2 {
        variants.push(reindex(&rich[..rich.len() / 2]));
        variants.push(reindex(&rich[rich.len() / 2..]));
        variants.push(reindex(&rich[1..]));
    }
    if modest.len() > 1 {
        variants.push(reindex(&modest[..modest.len().div_ceil(2)]));
    }
    if rich.len() > 1 && modest.len() > 1 {
        // A blended profile: strongest half of each, re-sorted by
        // descending intensity (profiles are intensity-ordered).
        let mut blend: Vec<PrefAtom> = rich[..rich.len() / 2]
            .iter()
            .chain(&modest[..modest.len() / 2])
            .cloned()
            .collect();
        blend.sort_by(|a, b| b.intensity.total_cmp(&a.intensity));
        let mut deduped: Vec<PrefAtom> = Vec::with_capacity(blend.len());
        for atom in blend {
            if !deduped.iter().any(|d| d.predicate == atom.predicate) {
                deduped.push(atom);
            }
        }
        variants.push(reindex(&deduped));
    }
    variants
}
