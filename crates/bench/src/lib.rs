//! # hypre-bench — experiment harness for the HYPRE reproduction
//!
//! Shared infrastructure for the `experiments` binary (which regenerates
//! every table and figure of the dissertation's evaluation chapter) and
//! the Criterion micro-benches:
//!
//! * [`fixture`] — the seeded standard corpus + graph + study users;
//! * [`ta_glue`] — building the §7.6.1 graded lists for the TA baseline;
//! * [`report`] — paper-style text tables and series;
//! * [`experiments`] — one function per table/figure, returning printable
//!   structures so the binary, tests and benches share one implementation;
//! * [`baseline`] — the pre-interning `HashSet<Value>` set algebra (the
//!   seed generation), kept for three-way comparisons;
//! * [`bitset_baseline`] — the pure-bitmap `BitSet` algebra and PEPS (the
//!   PR 1 generation), kept so adaptive-vs-bitset-vs-hashset benches and
//!   equivalence tests can measure all three generations;
//! * [`timing`] — wall-clock helpers for the `bench_report` binary;
//! * [`serving`] — the concurrent multi-session harness (cold executors
//!   vs one shared `ProfileCache` snapshot) shared by `bench_report`
//!   and the `parallel` bench;
//! * [`ingest`] — append-only corpus splits (base + delta) for the
//!   live-ingest equivalence tests and the `ingest_delta` vs
//!   `full_rewarm` bench rows.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
pub mod bitset_baseline;
pub mod experiments;
pub mod fixture;
pub mod ingest;
pub mod report;
pub mod serving;
pub mod ta_glue;
pub mod timing;

pub use fixture::Fixture;
