//! # hypre-bench — experiment harness for the HYPRE reproduction
//!
//! Shared infrastructure for the `experiments` binary (which regenerates
//! every table and figure of the dissertation's evaluation chapter) and
//! the Criterion micro-benches:
//!
//! * [`fixture`] — the seeded standard corpus + graph + study users;
//! * [`ta_glue`] — building the §7.6.1 graded lists for the TA baseline;
//! * [`report`] — paper-style text tables and series;
//! * [`experiments`] — one function per table/figure, returning printable
//!   structures so the binary, tests and benches share one implementation;
//! * [`baseline`] — the pre-interning `HashSet<Value>` set algebra, kept
//!   for bitset-vs-hashset comparisons;
//! * [`timing`] — wall-clock helpers for the `bench_report` binary.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
pub mod experiments;
pub mod fixture;
pub mod report;
pub mod ta_glue;
pub mod timing;

pub use fixture::Fixture;
