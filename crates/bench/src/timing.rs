//! Minimal wall-clock measurement helpers shared by the `experiments`
//! and `bench_report` binaries (which cannot use the dev-only criterion
//! harness).

use std::time::{Duration, Instant};

/// Median per-iteration wall-clock time of `routine` over `samples`
/// timed samples, after calibrating the per-sample iteration count to
/// `budget`.
pub fn median_time<R>(
    samples: usize,
    budget: Duration,
    mut routine: impl FnMut() -> R,
) -> Duration {
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        if start.elapsed() >= budget / 4 || iters >= 1 << 20 {
            break;
        }
        iters = (iters * 4).min(1 << 20);
    }
    let mut times: Vec<Duration> = (0..samples.max(3))
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            start.elapsed() / u32::try_from(iters).unwrap_or(u32::MAX)
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// `median_time` with the default 100 ms calibration budget and 5 samples.
pub fn quick_median<R>(routine: impl FnMut() -> R) -> Duration {
    median_time(5, Duration::from_millis(100), routine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_positive_and_ordered() {
        let fast = median_time(3, Duration::from_millis(5), || 21u64 * 2);
        // black_box per element: a plain `(0..n).sum()` const-folds to its
        // closed form in release builds and measures as zero.
        let slow = median_time(3, Duration::from_millis(5), || {
            (0..20_000u64).fold(0, |a, x| a ^ std::hint::black_box(x))
        });
        assert!(fast <= slow, "{fast:?} vs {slow:?}");
        assert!(slow > Duration::ZERO);
    }
}
