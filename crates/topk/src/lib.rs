//! # hypre-topk — Top-K baselines for the HYPRE reproduction
//!
//! The dissertation evaluates PEPS against **Fagin's Threshold Algorithm
//! (TA)** (§7.6.1, Definitions 19–20). This crate implements TA over
//! graded lists with sorted and random access, plus the no-random-access
//! variant **NRA** as a documented extension.
//!
//! The crate is dependency-free and generic over the object type; the
//! workload glue (building one graded list per attribute from preference
//! matches, `f∧`-aggregating author grades per paper) lives with the
//! experiment harness.
//!
//! ```
//! use hypre_topk::{GradedList, threshold_algorithm};
//!
//! let venue = GradedList::new([(1u64, 0.9), (2, 0.6)]);
//! let author = GradedList::new([(1u64, 0.5), (2, 0.7)]);
//! let f_and = |g: &[f64]| 1.0 - g.iter().map(|x| 1.0 - x).product::<f64>();
//! let top = threshold_algorithm(&[venue, author], 1, f_and);
//! assert_eq!(top[0].0, 1); // f∧(0.9, 0.5) = 0.95 beats f∧(0.6, 0.7) = 0.88
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod graded;
pub mod nra;
pub mod ta;

pub use graded::GradedList;
pub use nra::nra;
pub use ta::{threshold_algorithm, Ranked};
