//! Graded lists: the access structure Fagin-style Top-K algorithms run on.
//!
//! The dissertation's TA baseline (§7.6.1) materialises, per attribute, a
//! list of `(object, grade)` pairs sorted by descending grade, supporting
//! both *sorted access* (next best object) and *random access* (grade of a
//! given object). Objects absent from a list implicitly grade `0`.

use std::collections::HashMap;
use std::hash::Hash;

/// A per-attribute graded list with sorted and random access.
///
/// `T` is the object identity (the DBLP workload uses paper ids).
#[derive(Debug, Clone)]
pub struct GradedList<T> {
    sorted: Vec<(T, f64)>,
    random: HashMap<T, f64>,
}

impl<T: Clone + Eq + Hash + Ord> GradedList<T> {
    /// Builds a list from `(object, grade)` pairs, sorting by descending
    /// grade (ties by ascending object for determinism). Grades must be
    /// finite; duplicate objects keep their maximum grade.
    pub fn new(pairs: impl IntoIterator<Item = (T, f64)>) -> Self {
        let mut random: HashMap<T, f64> = HashMap::new();
        for (t, g) in pairs {
            assert!(g.is_finite(), "grades must be finite");
            random
                .entry(t)
                .and_modify(|old| *old = old.max(g))
                .or_insert(g);
        }
        let mut sorted: Vec<(T, f64)> = random.iter().map(|(t, g)| (t.clone(), *g)).collect();
        sorted.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        GradedList { sorted, random }
    }

    /// Number of graded objects.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Sorted access: the `i`-th best `(object, grade)` pair.
    pub fn sorted_access(&self, i: usize) -> Option<(&T, f64)> {
        self.sorted.get(i).map(|(t, g)| (t, *g))
    }

    /// Random access: the grade of `object`, `0.0` when ungraded (the
    /// convention the dissertation's list construction uses).
    pub fn grade(&self, object: &T) -> f64 {
        self.random.get(object).copied().unwrap_or(0.0)
    }

    /// Whether the object appears explicitly in this list.
    pub fn contains(&self, object: &T) -> bool {
        self.random.contains_key(object)
    }

    /// Iterates the list in descending-grade order.
    pub fn iter(&self) -> impl Iterator<Item = (&T, f64)> {
        self.sorted.iter().map(|(t, g)| (t, *g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_access_descends() {
        let l = GradedList::new([(1u64, 0.3), (2, 0.9), (3, 0.6)]);
        assert_eq!(l.sorted_access(0), Some((&2, 0.9)));
        assert_eq!(l.sorted_access(1), Some((&3, 0.6)));
        assert_eq!(l.sorted_access(2), Some((&1, 0.3)));
        assert_eq!(l.sorted_access(3), None);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn random_access_defaults_to_zero() {
        let l = GradedList::new([(1u64, 0.3)]);
        assert_eq!(l.grade(&1), 0.3);
        assert_eq!(l.grade(&42), 0.0);
        assert!(l.contains(&1));
        assert!(!l.contains(&42));
    }

    #[test]
    fn duplicates_keep_max_grade() {
        let l = GradedList::new([(1u64, 0.3), (1, 0.7), (1, 0.5)]);
        assert_eq!(l.len(), 1);
        assert_eq!(l.grade(&1), 0.7);
    }

    #[test]
    fn ties_break_by_object_for_determinism() {
        let l = GradedList::new([(5u64, 0.5), (2, 0.5), (9, 0.5)]);
        let order: Vec<u64> = l.iter().map(|(t, _)| *t).collect();
        assert_eq!(order, vec![2, 5, 9]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_grades() {
        let _ = GradedList::new([(1u64, f64::NAN)]);
    }
}
