//! The No-Random-Access (NRA) algorithm — the sorted-access-only sibling
//! of TA, included as a documented extension of the baseline suite.
//!
//! NRA never random-accesses a list. It maintains, per object seen so
//! far, the grades known from sorted access; an object's *lower bound*
//! aggregates known grades with `0` for unseen lists, and its *upper
//! bound* aggregates with each unseen list's current frontier grade.
//! The algorithm halts when `k` objects have lower bounds no smaller
//! than every other object's upper bound (including the "virtual" unseen
//! object whose upper bound is the aggregate of all frontiers).
//!
//! NRA returns the correct Top-K *set*; reported grades are lower bounds
//! and may be refined less than TA's exact grades when the algorithm
//! halts early.

use std::collections::HashMap;
use std::hash::Hash;

use crate::graded::GradedList;
use crate::ta::Ranked;

/// Runs NRA over the lists with a monotone aggregation function.
/// Returns up to `k` objects in descending lower-bound grade.
///
/// # Panics
/// Panics if `lists` is empty.
pub fn nra<T, F>(lists: &[GradedList<T>], k: usize, agg: F) -> Vec<Ranked<T>>
where
    T: Clone + Eq + Hash + Ord,
    F: Fn(&[f64]) -> f64,
{
    assert!(!lists.is_empty(), "NRA needs at least one graded list");
    if k == 0 {
        return Vec::new();
    }
    let m = lists.len();
    // known[t][i] = grade of t in list i if seen under sorted access
    let mut known: HashMap<T, Vec<Option<f64>>> = HashMap::new();
    let mut frontier: Vec<f64> = lists
        .iter()
        .map(|l| l.sorted_access(0).map(|(_, g)| g).unwrap_or(0.0))
        .collect();
    let max_depth = lists.iter().map(GradedList::len).max().unwrap_or(0);

    for depth in 0..max_depth {
        for (i, list) in lists.iter().enumerate() {
            if let Some((object, grade)) = list.sorted_access(depth) {
                known.entry(object.clone()).or_insert_with(|| vec![None; m])[i] = Some(grade);
                frontier[i] = grade;
            } else {
                frontier[i] = 0.0;
            }
        }

        // Bounds for every seen object.
        let mut bounded: Vec<(T, f64, f64)> = known
            .iter()
            .map(|(t, grades)| {
                let lower: Vec<f64> = grades.iter().map(|g| g.unwrap_or(0.0)).collect();
                let upper: Vec<f64> = grades
                    .iter()
                    .enumerate()
                    .map(|(i, g)| g.unwrap_or(frontier[i]))
                    .collect();
                (t.clone(), agg(&lower), agg(&upper))
            })
            .collect();
        bounded.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

        if bounded.len() >= k {
            let kth_lower = bounded[k - 1].1;
            // Upper bound of any unseen object: all grades at the frontier.
            let unseen_upper = agg(&frontier);
            let rest_max_upper = bounded[k..]
                .iter()
                .map(|(_, _, u)| *u)
                .fold(unseen_upper, f64::max);
            if kth_lower >= rest_max_upper {
                return bounded
                    .into_iter()
                    .take(k)
                    .map(|(t, l, _)| (t, l))
                    .collect();
            }
        }
    }

    // Lists exhausted: lower bounds are now exact.
    let mut out: Vec<Ranked<T>> = known
        .into_iter()
        .map(|(t, grades)| {
            let lower: Vec<f64> = grades.iter().map(|g| g.unwrap_or(0.0)).collect();
            (t, agg(&lower))
        })
        .collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out.truncate(k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ta::threshold_algorithm;
    use std::collections::HashSet;

    fn f_and_all(grades: &[f64]) -> f64 {
        1.0 - grades.iter().map(|g| 1.0 - g).product::<f64>()
    }

    fn lists() -> Vec<GradedList<u64>> {
        let a = GradedList::new([(1u64, 0.9), (2, 0.6), (3, 0.4), (4, 0.2), (5, 0.8)]);
        let b = GradedList::new([(1u64, 0.5), (2, 0.7), (3, 0.1), (4, 0.9), (6, 0.3)]);
        vec![a, b]
    }

    #[test]
    fn top_k_set_matches_ta() {
        let lists = lists();
        for k in 1..=6 {
            let ta: HashSet<u64> = threshold_algorithm(&lists, k, f_and_all)
                .into_iter()
                .map(|(t, _)| t)
                .collect();
            let nra_set: HashSet<u64> = nra(&lists, k, f_and_all)
                .into_iter()
                .map(|(t, _)| t)
                .collect();
            assert_eq!(ta, nra_set, "k={k}");
        }
    }

    #[test]
    fn exhausted_run_reports_exact_grades() {
        let lists = lists();
        // k = all objects forces full exhaustion → grades exact
        let got = nra(&lists, 6, f_and_all);
        for (t, g) in &got {
            let exact = f_and_all(&[lists[0].grade(t), lists[1].grade(t)]);
            assert!((g - exact).abs() < 1e-12, "object {t}");
        }
    }

    #[test]
    fn k_zero_is_empty() {
        assert!(nra(&lists(), 0, f_and_all).is_empty());
    }

    #[test]
    fn single_list_degenerates_to_head() {
        let l = GradedList::new([(1u64, 0.9), (2, 0.5), (3, 0.7)]);
        let got = nra(&[l], 2, |g| g[0]);
        assert_eq!(got, vec![(1, 0.9), (3, 0.7)]);
    }
}
