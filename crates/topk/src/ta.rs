//! Fagin's Threshold Algorithm (TA) — the Top-K baseline of §7.6.1
//! (Definition 20 of the dissertation).
//!
//! TA performs sorted access in parallel to all `m` graded lists. For each
//! object seen, it random-accesses the other lists, computes the aggregate
//! grade `t(x₁, …, x_m)` and keeps the best `k`. After each depth `d` it
//! computes the threshold `τ = t(x̄₁, …, x̄_m)` from the last grades seen
//! under sorted access and halts as soon as `k` objects grade at least
//! `τ` — no object below the current frontier can beat them when `t` is
//! monotone.

use std::collections::HashSet;
use std::hash::Hash;

use crate::graded::GradedList;

/// A ranked result: object plus aggregate grade.
pub type Ranked<T> = (T, f64);

/// Runs TA over the lists with a monotone aggregation function `agg`
/// (the dissertation instantiates `agg = f∧`). Returns up to `k` objects
/// in descending aggregate grade (ties by ascending object).
///
/// `agg` receives one grade per list, in list order; it must be monotone
/// in each argument for the threshold stop to be correct.
///
/// # Panics
/// Panics if `lists` is empty — aggregation over zero attributes is
/// meaningless.
pub fn threshold_algorithm<T, F>(lists: &[GradedList<T>], k: usize, agg: F) -> Vec<Ranked<T>>
where
    T: Clone + Eq + Hash + Ord,
    F: Fn(&[f64]) -> f64,
{
    assert!(!lists.is_empty(), "TA needs at least one graded list");
    if k == 0 {
        return Vec::new();
    }

    let mut seen: HashSet<T> = HashSet::new();
    let mut top: Vec<Ranked<T>> = Vec::new(); // kept sorted desc, ≤ k entries
    let mut grades_buf = vec![0.0f64; lists.len()];
    let max_depth = lists.iter().map(GradedList::len).max().unwrap_or(0);

    for depth in 0..max_depth {
        // Step 1: sorted access in parallel; random access for each new
        // object; remember the k best.
        for list in lists {
            let Some((object, _)) = list.sorted_access(depth) else {
                continue;
            };
            if !seen.insert(object.clone()) {
                continue;
            }
            for (slot, l) in grades_buf.iter_mut().zip(lists) {
                *slot = l.grade(object);
            }
            let grade = agg(&grades_buf);
            insert_top(&mut top, (object.clone(), grade), k);
        }

        // Step 2: threshold from the frontier grades at this depth.
        // Exhausted lists contribute grade 0 (they have no further
        // objects, and absent grades are 0 by convention).
        for (slot, l) in grades_buf.iter_mut().zip(lists) {
            *slot = l.sorted_access(depth).map(|(_, g)| g).unwrap_or(0.0);
        }
        let threshold = agg(&grades_buf);

        // Step 3: halt once k objects grade at least τ.
        if top.len() >= k && top[k - 1].1 >= threshold {
            break;
        }
    }
    top
}

fn insert_top<T: Clone + Eq + Ord>(top: &mut Vec<Ranked<T>>, entry: Ranked<T>, k: usize) {
    let pos = top
        .binary_search_by(|probe| {
            entry
                .1
                .total_cmp(&probe.1)
                .then_with(|| probe.0.cmp(&entry.0))
        })
        .unwrap_or_else(|p| p);
    top.insert(pos, entry);
    top.truncate(k);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The dissertation's aggregate: f∧ folded over the grades.
    fn f_and_all(grades: &[f64]) -> f64 {
        1.0 - grades.iter().map(|g| 1.0 - g).product::<f64>()
    }

    fn min_agg(grades: &[f64]) -> f64 {
        grades.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Exhaustive reference ranking.
    fn brute_force<T: Clone + Eq + Hash + Ord>(
        lists: &[GradedList<T>],
        k: usize,
        agg: impl Fn(&[f64]) -> f64,
    ) -> Vec<Ranked<T>> {
        let mut all: HashSet<T> = HashSet::new();
        for l in lists {
            all.extend(l.iter().map(|(t, _)| t.clone()));
        }
        let mut ranked: Vec<Ranked<T>> = all
            .into_iter()
            .map(|t| {
                let grades: Vec<f64> = lists.iter().map(|l| l.grade(&t)).collect();
                let g = agg(&grades);
                (t, g)
            })
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }

    fn venue_author_lists() -> Vec<GradedList<u64>> {
        // venue grades and author grades for six papers; papers 5 and 6
        // appear in only one list each.
        let venue = GradedList::new([(1u64, 0.9), (2, 0.6), (3, 0.4), (4, 0.2), (5, 0.8)]);
        let author = GradedList::new([(1u64, 0.5), (2, 0.7), (3, 0.1), (4, 0.9), (6, 0.3)]);
        vec![venue, author]
    }

    #[test]
    fn matches_brute_force_with_f_and() {
        let lists = venue_author_lists();
        for k in 1..=6 {
            let got = threshold_algorithm(&lists, k, f_and_all);
            let want = brute_force(&lists, k, f_and_all);
            assert_eq!(got.len(), want.len(), "k={k}");
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.0, w.0, "k={k}");
                assert!((g.1 - w.1).abs() < 1e-12, "k={k}");
            }
        }
    }

    #[test]
    fn matches_brute_force_with_min() {
        let lists = venue_author_lists();
        let got = threshold_algorithm(&lists, 3, min_agg);
        let want = brute_force(&lists, 3, min_agg);
        assert_eq!(got, want);
    }

    #[test]
    fn single_list_is_just_the_list_head() {
        let l = GradedList::new([(1u64, 0.9), (2, 0.5), (3, 0.7)]);
        let got = threshold_algorithm(&[l], 2, |g| g[0]);
        assert_eq!(got, vec![(1, 0.9), (3, 0.7)]);
    }

    #[test]
    fn k_zero_and_oversized_k() {
        let lists = venue_author_lists();
        assert!(threshold_algorithm(&lists, 0, f_and_all).is_empty());
        let all = threshold_algorithm(&lists, 100, f_and_all);
        assert_eq!(all.len(), 6, "six distinct objects across the lists");
    }

    #[test]
    fn objects_in_one_list_get_zero_for_missing_grades() {
        let lists = venue_author_lists();
        let all = threshold_algorithm(&lists, 6, f_and_all);
        let p5 = all.iter().find(|(t, _)| *t == 5).unwrap();
        assert!((p5.1 - f_and_all(&[0.8, 0.0])).abs() < 1e-12);
    }

    #[test]
    fn halts_before_full_scan_when_possible() {
        // One dominant object: TA should stop at depth 1 or 2, which we
        // can't observe directly, but the result must still be exact.
        let venue = GradedList::new((0..100u64).map(|i| (i, 1.0 - i as f64 / 100.0)));
        let author = GradedList::new((0..100u64).map(|i| (i, 1.0 - i as f64 / 100.0)));
        let got = threshold_algorithm(&[venue, author], 1, f_and_all);
        assert_eq!(got[0].0, 0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_lists_panic() {
        let lists: Vec<GradedList<u64>> = Vec::new();
        let _ = threshold_algorithm(&lists, 1, f_and_all);
    }
}
