//! End-to-end integration: corpus generation → §6.2 extraction → relstore
//! load → HYPRE ingest → enhancement → PEPS vs TA — the full pipeline the
//! dissertation's prototype implements, asserted on its headline claims.

use hypre_bench::experiments::{
    conversion_series, coverage_report, peps_vs_ta, qt_only_equivalence,
};
use hypre_bench::Fixture;
use hypre_repro::dblp::table10;
use hypre_repro::prelude::*;

fn fixture() -> &'static Fixture {
    static FX: std::sync::OnceLock<Fixture> = std::sync::OnceLock::new();
    FX.get_or_init(Fixture::small)
}

#[test]
fn graph_invariants_hold_after_full_ingest() {
    let fx = fixture();
    fx.graph
        .check_invariants()
        .expect("invariants after ingest");
    assert!(fx.graph.node_count() > 1000);
    assert!(fx.graph.edge_count() > 1000);
}

#[test]
fn conflict_machinery_fires_on_injected_contradictions() {
    let fx = fixture();
    // The fixture injects reversed-twin pairs at a 3 % rate (§6.2.3's
    // "A over B" then "B over A" contradiction); each twin must close a
    // cycle and be stored inert, with invariants intact (checked above).
    assert!(
        fx.ingest.cycle_edges > 10,
        "reversed twins close cycles at workload scale: {} cycles",
        fx.ingest.cycle_edges
    );
}

#[test]
fn table10_statistics_are_consistent() {
    let fx = fixture();
    let rows = table10(&fx.dataset, &fx.workload);
    assert_eq!(rows.len(), 6);
    let card = |name: &str| {
        rows.iter()
            .find(|r| r.relation == name)
            .unwrap()
            .cardinality
    };
    assert_eq!(card("dblp"), fx.dataset.papers.len());
    assert_eq!(card("quantitative_pref"), fx.workload.quantitative.len());
    assert_eq!(card("qualitative_pref"), fx.workload.qualitative.len());
    // every paper has at least one authorship row
    assert!(card("dblp_author") >= card("dblp"));
}

#[test]
fn conversion_increases_quantitative_preferences_for_every_study_user() {
    // The Figs. 26–27 claim: the graph ends up with strictly more scored
    // predicates than the original quantitative table.
    let fx = fixture();
    for user in fx.study_users() {
        let c = conversion_series(fx, user);
        assert!(
            c.from_graph.len() > c.from_quantitative_table.len(),
            "{user}: {} vs {}",
            c.from_graph.len(),
            c.from_quantitative_table.len()
        );
    }
}

#[test]
fn hypre_coverage_dominates_all_original_sources() {
    // The Fig. 28 claim (the paper reports gains of 120 %–336 %).
    let fx = fixture();
    for user in fx.study_users() {
        let r = coverage_report(fx, user).expect("coverage");
        assert!(r.hypre >= r.combined);
        assert!(r.combined >= r.quantitative);
        assert!(r.combined >= r.qualitative);
        assert!(
            r.gain_over_quantitative() > 1.0,
            "{user}: expected strict gain, got {:?}",
            r
        );
    }
}

#[test]
fn peps_equals_ta_on_quantitative_only_profiles() {
    // §7.6.3: "The results show 100% similarity … and 100% overlap."
    let fx = fixture();
    for user in fx.study_users() {
        let (sim, ovl) = qt_only_equivalence(fx, user).expect("comparison");
        assert_eq!(sim, 1.0, "{user} similarity");
        assert_eq!(ovl, 1.0, "{user} overlap");
    }
}

#[test]
fn hybrid_peps_beats_ta_and_keeps_common_order() {
    // §7.6.3's two findings for the hybrid profile: better coverage and
    // higher intensities than TA, with the common tuples in compatible
    // order.
    let fx = fixture();
    let r = peps_vs_ta(fx, fx.rich_user, PepsVariant::Complete).expect("comparison");
    assert!(
        r.peps.len() >= r.ta.len(),
        "{} vs {}",
        r.peps.len(),
        r.ta.len()
    );
    if let (Some((_, p0)), Some((_, t0))) = (r.peps.first(), r.ta.first()) {
        assert!(p0 >= t0, "PEPS's best ({p0}) at least TA's best ({t0})");
    }
    assert!(
        r.concordance > 0.9,
        "common tuples keep compatible order: {}",
        r.concordance
    );
}

#[test]
fn approximate_peps_is_a_subset_ranking() {
    // With k larger than the reachable tuple count neither variant stops
    // early, so the exhaustive relationship must hold: the approximate
    // variant ranks a subset of complete's tuples, never with a higher
    // score (it expands a subset of complete's combinations).
    let fx = fixture();
    let exec = fx.executor();
    let atoms = fx.graph.positive_profile(fx.modest_user);
    let pairs = PairwiseCache::build(&atoms, &exec).unwrap();
    let complete = Peps::new(&atoms, &exec, &pairs, PepsVariant::Complete)
        .top_k(100_000)
        .unwrap();
    let approx = Peps::new(&atoms, &exec, &pairs, PepsVariant::Approximate)
        .top_k(100_000)
        .unwrap();
    assert!(approx.len() <= complete.len());
    let complete_scores: std::collections::HashMap<_, _> = complete.iter().cloned().collect();
    for (t, g) in &approx {
        let cg = complete_scores
            .get(t)
            .unwrap_or_else(|| panic!("approximate found {t} that complete missed"));
        assert!(cg + 1e-12 >= *g, "complete's score dominates for {t}");
    }
}

#[test]
fn enhancement_filters_and_ranks_the_base_query() {
    let fx = fixture();
    let user = fx.rich_user;
    let base = BaseQuery::dblp();
    let enhanced = enhance_query(&base, &fx.graph, user);
    let all_papers = fx.dataset.papers.len() as u64;
    let personalised = enhanced.query.count(&fx.db).expect("enhanced query runs");
    assert!(personalised > 0, "no starvation");
    assert!(personalised < all_papers, "no flooding");
}

#[test]
fn negative_preferences_exclude_tuples_from_enhancement() {
    let fx = fixture();
    // find a user with a negative preference
    let user = fx
        .workload
        .quantitative
        .iter()
        .find(|p| p.intensity.value() < 0.0)
        .map(|p| p.user)
        .expect("workload extracts negative preferences");
    let negatives = fx.graph.negative_preferences(user);
    assert!(!negatives.is_empty());
    let exec = fx.executor();
    let atoms = fx.graph.positive_profile(user);
    let neg_preds: Vec<_> = negatives.iter().map(|n| n.predicate.clone()).collect();
    let with = hypre_repro::core::enhance::score_tuples(&exec, &atoms).unwrap();
    let without =
        hypre_repro::core::enhance::score_tuples_with_negatives(&exec, &atoms, &neg_preds).unwrap();
    assert!(without.len() <= with.len());
}

#[test]
fn proposition3_and_4_bounds_hold_for_small_profiles() {
    // Exhaustively count distinct AND combinations of n preferences and
    // compare with the closed forms.
    for n in 1..=10u32 {
        assert_eq!(and_combination_count(n), 2u128.pow(n) - 1);
        assert_eq!(and_or_combination_count(n), (3u128.pow(n) - 1) / 2);
    }
}

/// Counts non-empty subsets (every subset is one AND combination).
fn and_combination_count(n: u32) -> u128 {
    (1u128 << n) - 1
}

/// Counts subsets with an AND/OR choice at each of the `k−1` join points
/// of a size-`k` subset: Σ_k C(n,k)·2^(k−1).
fn and_or_combination_count(n: u32) -> u128 {
    let mut total = 0u128;
    for k in 1..=n {
        total += binom(n, k) * 2u128.pow(k - 1);
    }
    total
}

fn binom(n: u32, k: u32) -> u128 {
    let mut acc = 1u128;
    for i in 0..k {
        acc = acc * (n - i) as u128 / (i + 1) as u128;
    }
    acc
}
