//! Snapshot persistence contract: a warmed `ProfileCache` saved to disk
//! and loaded back must serve byte-identical `top_k` rankings at every
//! worker count without issuing a single SQL query, and every way a
//! snapshot file can be wrong — missing, truncated, bit-flipped magic,
//! newer format version, warmed on a different corpus — must surface as
//! the right typed `HypreError`, never a panic and never silently wrong
//! results.

use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

use hypre_bench::Fixture;
use hypre_repro::prelude::*;
use hypre_repro::relstore::Value;

fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(Fixture::small)
}

/// A warmed cache + pairwise table over the rich user's profile, plus
/// the reference top-25 computed before any serialisation.
fn warmed() -> (ProfileCache, PairwiseCache, Vec<PrefAtom>, Vec<RankedTuple>) {
    let fx = fixture();
    let atoms = fx.graph.positive_profile(fx.rich_user);
    let exec = fx.executor();
    let pairs = PairwiseCache::build_with(&atoms, &exec, Parallelism::Sequential).unwrap();
    let want = Peps::new(&atoms, &exec, &pairs, PepsVariant::Complete)
        .top_k(25)
        .unwrap();
    (ProfileCache::snapshot(&exec), pairs, atoms, want)
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hypre_{name}_{}.hyprsnap", std::process::id()))
}

#[test]
fn loaded_snapshot_serves_identical_top_k_at_1_2_and_8_workers() {
    let fx = fixture();
    let (cache, pairs, atoms, want) = warmed();
    let path = temp_path("roundtrip");
    cache.save_to(&path, Some(&pairs)).unwrap();
    let (loaded, loaded_pairs) = ProfileCache::load_from(&path, &fx.db).unwrap();
    std::fs::remove_file(&path).unwrap();
    let loaded = Arc::new(loaded);
    let loaded_pairs = loaded_pairs.expect("pairwise table travelled with the snapshot");

    for threads in [1usize, 2, 8] {
        let session = Executor::with_cache(&fx.db, Arc::clone(&loaded))
            .unwrap()
            .with_parallelism(Parallelism::threads(threads));
        let top = Peps::new(&atoms, &session, &loaded_pairs, PepsVariant::Complete)
            .top_k(25)
            .unwrap();
        assert_eq!(top, want, "top_k diverged at {threads} workers");
        assert_eq!(
            session.queries_run(),
            0,
            "a loaded snapshot must serve without SQL ({threads} workers)"
        );
    }
}

#[test]
fn missing_snapshot_file_is_an_io_error() {
    let fx = fixture();
    let err = ProfileCache::load_from("/nonexistent/path/warm.hyprsnap", &fx.db).unwrap_err();
    assert!(matches!(err, HypreError::SnapshotIo { .. }), "{err:?}");
}

#[test]
fn truncated_snapshots_are_corrupt_at_every_tested_cut() {
    let fx = fixture();
    let (cache, pairs, _, _) = warmed();
    let path = temp_path("truncate");
    cache.save_to(&path, Some(&pairs)).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    // Cuts inside the magic, the version, the header sections and near
    // the end (the module's unit suite sweeps every byte; here we pin
    // the file-level behaviour end to end).
    for cut in [0, 4, 8, 10, bytes.len() / 3, bytes.len() - 1] {
        let path = temp_path("truncate_cut");
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let err = ProfileCache::load_from(&path, &fx.db).unwrap_err();
        std::fs::remove_file(&path).unwrap();
        assert!(
            matches!(err, HypreError::SnapshotCorrupt { .. }),
            "cut at {cut}: {err:?}"
        );
    }
}

#[test]
fn bad_magic_and_trailing_garbage_are_corrupt() {
    let fx = fixture();
    let (cache, _, _, _) = warmed();
    let path = temp_path("garble");
    cache.save_to(&path, None).unwrap();
    let good = std::fs::read(&path).unwrap();

    let mut flipped = good.clone();
    flipped[0] ^= 0xFF;
    std::fs::write(&path, &flipped).unwrap();
    let err = ProfileCache::load_from(&path, &fx.db).unwrap_err();
    assert!(matches!(err, HypreError::SnapshotCorrupt { .. }), "{err:?}");

    let mut trailing = good;
    trailing.extend_from_slice(b"junk");
    std::fs::write(&path, &trailing).unwrap();
    let err = ProfileCache::load_from(&path, &fx.db).unwrap_err();
    std::fs::remove_file(&path).unwrap();
    assert!(matches!(err, HypreError::SnapshotCorrupt { .. }), "{err:?}");
}

#[test]
fn version_skewed_snapshot_reports_both_versions() {
    let fx = fixture();
    let (cache, _, _, _) = warmed();
    let path = temp_path("version");
    cache.save_to(&path, None).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    let err = ProfileCache::load_from(&path, &fx.db).unwrap_err();
    std::fs::remove_file(&path).unwrap();
    match err {
        HypreError::SnapshotVersion { found, supported } => {
            assert_eq!(found, 99);
            assert!(supported < 99);
        }
        other => panic!("expected SnapshotVersion, got {other:?}"),
    }
}

#[test]
fn snapshot_of_a_different_corpus_is_stale() {
    let fx = fixture();
    let (cache, _, _, _) = warmed();
    let path = temp_path("stale");
    cache.save_to(&path, None).unwrap();
    // Same schema, one more paper: the fingerprint must refuse it.
    let mut grown = fx.db.clone();
    grown
        .table_mut("dblp")
        .unwrap()
        .insert(vec![
            Value::Int(9_999_999),
            Value::str("Phantom Paper"),
            Value::Int(2011),
            Value::str("VLDB"),
        ])
        .unwrap();
    let err = ProfileCache::load_from(&path, &grown).unwrap_err();
    std::fs::remove_file(&path).unwrap();
    match err {
        HypreError::StaleSnapshot {
            table,
            warmed,
            current,
        } => {
            assert_eq!(table, "dblp");
            assert_eq!(current, warmed.map(|n| n + 1));
        }
        other => panic!("expected StaleSnapshot, got {other:?}"),
    }
}
