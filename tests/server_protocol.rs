//! Protocol robustness for the TCP serving loop: every frame type
//! round-trips over a real socket, malformed input maps to typed error
//! frames without killing the connection loop, a lying length prefix is
//! rejected at the admission bound, and the bounded queue sheds load
//! with typed `Overloaded` rejections — no panics, no hangs.

use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use hypre_bench::Fixture;
use hypre_repro::core::serve::wire::{
    self, ErrorCode, Request, Response, WireAtom, MAX_FRAME_BYTES,
};
use hypre_repro::core::serve::{ServeConfig, Server};
use hypre_repro::prelude::*;
use hypre_repro::relstore::{Database, Predicate};

fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(Fixture::small)
}

fn rich_atoms() -> Vec<PrefAtom> {
    fixture().graph.positive_profile(fixture().rich_user)
}

/// Starts a server over the fixture corpus with the rich profile warmed.
fn start_server(config: ServeConfig) -> (Server, Arc<Database>) {
    let fx = fixture();
    let db = Arc::new(fx.db.clone());
    let atoms = rich_atoms();
    let predicates: Vec<&Predicate> = atoms.iter().map(|a| &a.predicate).collect();
    let cache = ProfileCache::warm(&db, BaseQuery::dblp(), predicates).unwrap();
    let epochs = Arc::new(EpochCache::new(cache));
    let server = Server::start(Arc::clone(&db), epochs, config).unwrap();
    (server, db)
}

fn connect(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
}

fn send(stream: &mut TcpStream, req: &Request) {
    wire::write_frame(stream, &wire::encode_request(req)).unwrap();
}

fn recv(stream: &mut TcpStream) -> Response {
    let payload = wire::read_frame(stream, MAX_FRAME_BYTES).unwrap();
    wire::decode_response(&payload).unwrap()
}

fn top_k_request(tenant: u64, k: u32) -> Request {
    Request::TopK {
        tenant,
        k,
        variant: PepsVariant::Complete,
        atoms: rich_atoms()
            .iter()
            .map(|a| WireAtom {
                predicate: a.predicate.canonical(),
                intensity: a.intensity,
            })
            .collect(),
    }
}

/// What the serving loop must answer for the rich profile: the solo
/// sequential reference.
fn solo_top_k(db: &Database, k: usize) -> Vec<RankedTuple> {
    let atoms = rich_atoms();
    let exec = Executor::new(db, BaseQuery::dblp());
    let pairs = PairwiseCache::build(&atoms, &exec).unwrap();
    Peps::new(&atoms, &exec, &pairs, PepsVariant::Complete)
        .top_k(k)
        .unwrap()
}

#[test]
fn every_frame_type_round_trips_over_a_real_socket() {
    let (server, db) = start_server(ServeConfig {
        shards: 2,
        ..ServeConfig::default()
    });
    let mut stream = connect(&server);

    send(&mut stream, &Request::Ping);
    assert_eq!(recv(&mut stream), Response::Pong);

    send(&mut stream, &top_k_request(5, 10));
    match recv(&mut stream) {
        Response::TopK(ranked) => assert_eq!(ranked, solo_top_k(&db, 10)),
        other => panic!("expected a TopK reply, got {other:?}"),
    }

    send(&mut stream, &Request::Stats { tenant: 5 });
    match recv(&mut stream) {
        Response::Stats(stats) => {
            assert_eq!(stats.tenant, 5);
            assert_eq!(stats.tenant_requests, 1);
            assert_eq!(stats.tenant_errors, 0);
            assert_eq!(stats.total_requests, 1);
            assert!(stats.batches >= 1);
        }
        other => panic!("expected a Stats reply, got {other:?}"),
    }
    assert_eq!(server.tenant_stats(5).requests, 1);
    assert_eq!(server.stats().connections, 1);
    server.shutdown();
}

#[test]
fn malformed_frames_get_typed_errors_and_the_connection_keeps_serving() {
    let (server, db) = start_server(ServeConfig {
        shards: 1,
        ..ServeConfig::default()
    });
    let mut stream = connect(&server);

    // Unknown opcode: typed rejection, connection survives.
    wire::write_frame(&mut stream, &[0x55, 1, 2, 3]).unwrap();
    match recv(&mut stream) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownOpcode),
        other => panic!("expected an error frame, got {other:?}"),
    }

    // Truncated body: a well-framed TopK payload cut mid-field.
    let mut short = wire::encode_request(&top_k_request(1, 5));
    short.truncate(7);
    wire::write_frame(&mut stream, &short).unwrap();
    match recv(&mut stream) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected an error frame, got {other:?}"),
    }

    // Trailing garbage after a valid Ping payload.
    let mut padded = wire::encode_request(&Request::Ping);
    padded.extend_from_slice(b"junk");
    wire::write_frame(&mut stream, &padded).unwrap();
    match recv(&mut stream) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected an error frame, got {other:?}"),
    }

    // Semantically invalid requests: k = 0, then an unparsable predicate.
    send(
        &mut stream,
        &Request::TopK {
            tenant: 9,
            k: 0,
            variant: PepsVariant::Complete,
            atoms: vec![],
        },
    );
    match recv(&mut stream) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected an error frame, got {other:?}"),
    }
    send(
        &mut stream,
        &Request::TopK {
            tenant: 9,
            k: 3,
            variant: PepsVariant::Complete,
            atoms: vec![WireAtom {
                predicate: "not a predicate ((".into(),
                intensity: 0.5,
            }],
        },
    );
    match recv(&mut stream) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected an error frame, got {other:?}"),
    }

    // The same connection still serves a valid request after all that.
    send(&mut stream, &top_k_request(9, 5));
    match recv(&mut stream) {
        Response::TopK(ranked) => assert_eq!(ranked, solo_top_k(&db, 5)),
        other => panic!("expected a TopK reply, got {other:?}"),
    }
    assert!(server.stats().protocol_errors >= 3);
    let tenant = server.tenant_stats(9);
    assert_eq!(tenant.requests, 3, "k=0, bad predicate, then the good one");
    assert_eq!(tenant.errors, 2);
    server.shutdown();
}

#[test]
fn oversized_frames_hit_the_admission_bound_and_the_server_survives() {
    let (server, db) = start_server(ServeConfig {
        shards: 1,
        max_frame_bytes: 256,
        ..ServeConfig::default()
    });

    // A frame declaring 10 KiB against a 256-byte bound: typed
    // rejection before any payload is buffered, then the connection is
    // closed (a lying prefix cannot be resynced).
    let mut stream = connect(&server);
    stream.write_all(&10_240u32.to_be_bytes()).unwrap();
    stream.write_all(&[0u8; 64]).unwrap();
    match recv(&mut stream) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::FrameTooLarge),
        other => panic!("expected an error frame, got {other:?}"),
    }
    let eof = wire::read_frame(&mut stream, MAX_FRAME_BYTES);
    assert!(eof.is_err(), "the poisoned connection must be closed");

    // The server itself keeps serving new connections: a one-atom
    // request small enough to clear the 256-byte bound.
    let atom = rich_atoms().remove(0);
    let small = Request::TopK {
        tenant: 2,
        k: 5,
        variant: PepsVariant::Complete,
        atoms: vec![WireAtom {
            predicate: atom.predicate.canonical(),
            intensity: atom.intensity,
        }],
    };
    let solo_small = {
        let atoms = vec![PrefAtom::new(0, atom.predicate.clone(), atom.intensity)];
        let exec = Executor::new(&db, BaseQuery::dblp());
        let pairs = PairwiseCache::build(&atoms, &exec).unwrap();
        Peps::new(&atoms, &exec, &pairs, PepsVariant::Complete)
            .top_k(5)
            .unwrap()
    };
    let mut fresh = connect(&server);
    send(&mut fresh, &small);
    match recv(&mut fresh) {
        Response::TopK(ranked) => assert_eq!(ranked, solo_small),
        other => panic!("expected a TopK reply, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn a_truncated_frame_then_disconnect_cannot_hang_the_loop() {
    let (server, db) = start_server(ServeConfig {
        shards: 1,
        ..ServeConfig::default()
    });
    {
        // Half a length prefix, then the client vanishes.
        let mut stream = connect(&server);
        stream.write_all(&[0, 0]).unwrap();
    }
    {
        // A full prefix promising a payload that never arrives.
        let mut stream = connect(&server);
        stream.write_all(&100u32.to_be_bytes()).unwrap();
        stream.write_all(&[1, 2, 3]).unwrap();
    }
    // The loop is still alive and serving.
    let mut fresh = connect(&server);
    send(&mut fresh, &top_k_request(3, 5));
    match recv(&mut fresh) {
        Response::TopK(ranked) => assert_eq!(ranked, solo_top_k(&db, 5)),
        other => panic!("expected a TopK reply, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn the_bounded_queue_sheds_load_with_typed_overload_rejections() {
    let (server, db) = start_server(ServeConfig {
        shards: 1,
        queue_capacity: 2,
        ..ServeConfig::default()
    });
    let mut stream = connect(&server);

    // Pipeline 6 requests in a single write: one sweep admits 2 and
    // sheds 4 with typed Overloaded frames; nothing panics, nothing is
    // silently dropped.
    let mut burst = Vec::new();
    for _ in 0..6 {
        let payload = wire::encode_request(&top_k_request(8, 10));
        burst.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        burst.extend_from_slice(&payload);
    }
    stream.write_all(&burst).unwrap();

    let want = solo_top_k(&db, 10);
    let mut served = 0usize;
    let mut shed = 0usize;
    for _ in 0..6 {
        match recv(&mut stream) {
            Response::TopK(ranked) => {
                assert_eq!(ranked, want);
                served += 1;
            }
            Response::Error { code, .. } => {
                assert_eq!(code, ErrorCode::Overloaded);
                shed += 1;
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(served + shed, 6, "every request gets exactly one answer");
    assert!(served >= 2, "admitted requests are served, not dropped");
    assert!(shed >= 1, "the bound must reject the burst's tail");
    assert_eq!(server.stats().overloads, shed as u64);
    server.shutdown();
}
