//! Parallelism-determinism and shared-cache equivalence over the
//! generated DBLP corpus: the work-stealing pairwise build and PEPS
//! rounds must be byte-identical to the sequential engine at every
//! worker count (and on randomized profiles — the steal schedule is
//! timing-dependent, the output may not be), and
//! concurrent session executors sharing one `ProfileCache` snapshot must
//! rank exactly like a fresh single-threaded executor — the contract
//! that lets the multi-user serving path reuse materialised tuple sets
//! without re-running SQL.

use std::sync::{Arc, OnceLock};

use hypre_bench::Fixture;
use hypre_repro::prelude::*;
use hypre_repro::relstore::Predicate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(Fixture::small)
}

/// The rich study user's positive profile — the same profile the benches
/// and the PR 1/PR 2 equivalence suites exercise.
fn rich_atoms() -> Vec<PrefAtom> {
    fixture().graph.positive_profile(fixture().rich_user)
}

#[test]
fn pairwise_build_byte_identical_at_1_2_and_8_threads() {
    let fx = fixture();
    let atoms = rich_atoms();
    assert!(atoms.len() >= 8, "profile too small to exercise sharding");
    let exec = fx.executor();
    let reference = PairwiseCache::build_with(&atoms, &exec, Parallelism::Sequential).unwrap();
    for threads in [1usize, 2, 8] {
        let sharded =
            PairwiseCache::build_with(&atoms, &exec, Parallelism::threads(threads)).unwrap();
        assert_eq!(
            sharded.entries(),
            reference.entries(),
            "pairwise table diverged at {threads} threads"
        );
        assert_eq!(sharded.applicable_count(), reference.applicable_count());
        for i in 0..atoms.len() {
            assert_eq!(
                sharded.pairs_from(i).collect::<Vec<_>>(),
                reference.pairs_from(i).collect::<Vec<_>>(),
                "pairs_from({i}) diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn peps_top_k_byte_identical_across_worker_counts() {
    let fx = fixture();
    let atoms = rich_atoms();
    let exec = fx.executor();
    let reference_pairs =
        PairwiseCache::build_with(&atoms, &exec, Parallelism::Sequential).unwrap();
    for variant in [PepsVariant::Complete, PepsVariant::Approximate] {
        let reference = Peps::new(&atoms, &exec, &reference_pairs, variant);
        let want_top = reference.top_k(25).unwrap();
        let want_order = reference.ordered_combinations().unwrap();
        for threads in [1usize, 2, 8] {
            let pairs =
                PairwiseCache::build_with(&atoms, &exec, Parallelism::threads(threads)).unwrap();
            let peps = Peps::new(&atoms, &exec, &pairs, variant);
            assert_eq!(
                peps.top_k(25).unwrap(),
                want_top,
                "top_k diverged at {threads} threads ({variant:?})"
            );
            assert_eq!(
                peps.ordered_combinations().unwrap(),
                want_order,
                "ordered_combinations diverged at {threads} threads ({variant:?})"
            );
        }
    }
}

#[test]
fn peps_round_expansion_byte_identical_across_worker_counts() {
    // PR 4: the PEPS rounds themselves shard their seed expansions
    // across the executor's Parallelism workers. The dedup set is
    // claimed sequentially before the fan-out and per-tuple scores merge
    // as maxima, so every worker count must produce byte-identical
    // rankings *and* byte-identical ORDER lists.
    let fx = fixture();
    let atoms = rich_atoms();
    let exec = fx.executor();
    let pairs = PairwiseCache::build_with(&atoms, &exec, Parallelism::Sequential).unwrap();
    for variant in [PepsVariant::Complete, PepsVariant::Approximate] {
        exec.set_parallelism(Parallelism::Sequential);
        let reference = Peps::new(&atoms, &exec, &pairs, variant);
        let want_top = reference.top_k(25).unwrap();
        let want_order = reference.ordered_combinations().unwrap();
        for threads in [1usize, 2, 8] {
            exec.set_parallelism(Parallelism::threads(threads));
            let peps = Peps::new(&atoms, &exec, &pairs, variant);
            assert_eq!(
                peps.top_k(25).unwrap(),
                want_top,
                "top_k diverged at {threads} expansion workers ({variant:?})"
            );
            assert_eq!(
                peps.ordered_combinations().unwrap(),
                want_order,
                "ordered_combinations diverged at {threads} expansion workers ({variant:?})"
            );
        }
    }
    exec.set_parallelism(Parallelism::Sequential);
}

#[test]
fn work_stealing_rounds_match_sequential_on_randomized_profiles() {
    // PR 8 property: the work-stealing round execution (idle workers
    // steal whole expansion subtrees from the tail of the most-loaded
    // victim) must stay byte-identical to the sequential engine on
    // *randomized* profiles, not just the two study users' — random
    // sub-profiles (random subset, random order, random variant) swept
    // across worker counts, including an odd count that forces uneven
    // initial deques. The steal schedule itself is timing-dependent,
    // which is exactly the point: no schedule may move a byte.
    let fx = fixture();
    let mut pool = rich_atoms();
    pool.extend(fx.graph.positive_profile(fx.modest_user));
    let exec = fx.executor();
    let mut rng = StdRng::seed_from_u64(0x5EED_0008);
    for trial in 0..8 {
        let size = rng.gen_range(4..=pool.len());
        let mut idx: Vec<usize> = (0..pool.len()).collect();
        for i in 0..size {
            let j = rng.gen_range(i..pool.len());
            idx.swap(i, j);
        }
        let atoms: Vec<PrefAtom> = idx[..size].iter().map(|&i| pool[i].clone()).collect();
        let variant = if rng.gen_bool(0.3) {
            PepsVariant::Approximate
        } else {
            PepsVariant::Complete
        };

        exec.set_parallelism(Parallelism::Sequential);
        let pairs = PairwiseCache::build_with(&atoms, &exec, Parallelism::Sequential).unwrap();
        let reference = Peps::new(&atoms, &exec, &pairs, variant);
        let want_top = reference.top_k(20).unwrap();
        let want_order = reference.ordered_combinations().unwrap();

        for workers in [2usize, 3, 8] {
            let stolen =
                PairwiseCache::build_with(&atoms, &exec, Parallelism::threads(workers)).unwrap();
            assert_eq!(
                stolen.entries(),
                pairs.entries(),
                "pairwise build diverged (trial {trial}, {workers} workers)"
            );
            exec.set_parallelism(Parallelism::threads(workers));
            let peps = Peps::new(&atoms, &exec, &stolen, variant);
            assert_eq!(
                peps.top_k(20).unwrap(),
                want_top,
                "top_k diverged (trial {trial}, {workers} workers, {variant:?})"
            );
            assert_eq!(
                peps.ordered_combinations().unwrap(),
                want_order,
                "ordered_combinations diverged (trial {trial}, {workers} workers, {variant:?})"
            );
        }
        exec.set_parallelism(Parallelism::Sequential);
    }
}

#[test]
fn concurrent_sessions_sharing_one_profile_cache_rank_identically() {
    let fx = fixture();
    let atoms = rich_atoms();

    // Reference: a fresh, fully sequential executor.
    let fresh = fx.executor();
    let fresh_pairs = PairwiseCache::build(&atoms, &fresh).unwrap();
    let want = Peps::new(&atoms, &fresh, &fresh_pairs, PepsVariant::Complete)
        .top_k(20)
        .unwrap();

    // Build phase: warm once, freeze, share.
    let cache = Arc::new(ProfileCache::snapshot(&fresh));
    assert_eq!(cache.len(), atoms.len());

    // N concurrent sessions, each its own executor over the snapshot,
    // each sharding its own pairwise build.
    let results: Vec<(Vec<RankedTuple>, usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let atoms = &atoms;
                let db = &fx.db;
                scope.spawn(move || {
                    let session = Executor::with_cache(db, cache)
                        .expect("cache matches the corpus")
                        .with_parallelism(Parallelism::threads(2));
                    let pairs = PairwiseCache::build(atoms, &session).unwrap();
                    let top = Peps::new(atoms, &session, &pairs, PepsVariant::Complete)
                        .top_k(20)
                        .unwrap();
                    (top, session.queries_run(), session.shared_hits())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (top, queries, shared_hits) in results {
        assert_eq!(top, want, "session ranking diverged from the reference");
        assert_eq!(queries, 0, "sessions must not re-run profile SQL");
        assert!(shared_hits >= atoms.len(), "sets must come from the cache");
    }
}

#[test]
fn mixed_parallelism_knobs_in_one_process_stay_byte_identical() {
    // The worker-count sweeps above pin each knob in isolation; this
    // pins the *mixed* case — one `Fixed(2)` and one `Auto` executor
    // sharing the same `ProfileCache` snapshot, running concurrently in
    // one process — against the sequential reference. Different knobs
    // may schedule their round expansions completely differently, but
    // the rankings and ORDER lists must not move by a byte.
    let fx = fixture();
    let atoms = rich_atoms();
    let fresh = fx.executor();
    let fresh_pairs = PairwiseCache::build(&atoms, &fresh).unwrap();
    let reference = Peps::new(&atoms, &fresh, &fresh_pairs, PepsVariant::Complete);
    let want_top = reference.top_k(25).unwrap();
    let want_order = reference.ordered_combinations().unwrap();
    let cache = Arc::new(ProfileCache::snapshot(&fresh));

    let knobs = [Parallelism::threads(2), Parallelism::Auto];
    let results: Vec<(Vec<RankedTuple>, Vec<CombinationRecord>, usize)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = knobs
                .iter()
                .map(|&knob| {
                    let cache = Arc::clone(&cache);
                    let atoms = &atoms;
                    let db = &fx.db;
                    scope.spawn(move || {
                        let session = Executor::with_cache(db, cache)
                            .expect("cache matches the corpus")
                            .with_parallelism(knob);
                        let pairs = PairwiseCache::build(atoms, &session).unwrap();
                        let peps = Peps::new(atoms, &session, &pairs, PepsVariant::Complete);
                        (
                            peps.top_k(25).unwrap(),
                            peps.ordered_combinations().unwrap(),
                            session.queries_run(),
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
    for ((top, order, queries), knob) in results.iter().zip(&knobs) {
        assert_eq!(top, &want_top, "top_k diverged under {knob:?}");
        assert_eq!(order, &want_order, "ORDER list diverged under {knob:?}");
        assert_eq!(*queries, 0, "sessions must not re-run profile SQL");
    }
}

#[test]
fn session_over_a_partial_snapshot_matches_a_fresh_executor() {
    // A snapshot warmed with only the modest user's predicates still
    // serves the rich user's profile: overlapping predicates resolve
    // from the cache, the rest run locally with overlay ids, and the
    // ranked identities are identical to a cold executor's.
    let fx = fixture();
    let modest_atoms = fx.graph.positive_profile(fx.modest_user);
    let rich = rich_atoms();
    let predicates: Vec<&Predicate> = modest_atoms.iter().map(|a| &a.predicate).collect();
    let cache = Arc::new(ProfileCache::warm(&fx.db, BaseQuery::dblp(), predicates).unwrap());

    let fresh = fx.executor();
    let fresh_pairs = PairwiseCache::build(&rich, &fresh).unwrap();
    let want = Peps::new(&rich, &fresh, &fresh_pairs, PepsVariant::Complete)
        .top_k(15)
        .unwrap();

    let missing: std::collections::HashSet<String> = rich
        .iter()
        .map(|a| a.predicate.canonical())
        .filter(|key| !modest_atoms.iter().any(|m| m.predicate.canonical() == *key))
        .collect();
    let session = Executor::with_cache(&fx.db, cache).expect("cache matches the corpus");
    let pairs = PairwiseCache::build(&rich, &session).unwrap();
    let got = Peps::new(&rich, &session, &pairs, PepsVariant::Complete)
        .top_k(15)
        .unwrap();
    assert_eq!(got, want);
    assert_eq!(
        session.queries_run(),
        missing.len(),
        "exactly the predicates absent from the snapshot run SQL"
    );
}
