//! Three-way differential properties for the PR 2 adaptive tuple-set
//! rewrite: on random predicate *trees* over the generated DBLP corpus,
//! the adaptive `TupleSet` algebra, the pure-bitmap `BitSet` algebra and
//! the seed `HashSet<Value>` algebra must agree exactly — and
//! `Peps::top_k` / `ordered_combinations` must be byte-identical across
//! all three engine generations (adaptive `Peps`, PR 1 `BitsetPeps`, seed
//! `SeedPeps`).

use std::collections::HashSet;
use std::sync::OnceLock;

use proptest::prelude::*;

use hypre_bench::baseline::{HashSetAlgebra, SeedPeps};
use hypre_bench::bitset_baseline::{BitsetAlgebra, BitsetPeps};
use hypre_bench::Fixture;
use hypre_repro::prelude::*;
use hypre_repro::relstore::{Predicate, Value};

fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(Fixture::small)
}

/// Draws a predicate from the extracted workload (a real stored
/// preference over the corpus) or a synthetic year-range/venue atom, so
/// dense, sparse and empty tuple sets are all exercised.
fn corpus_predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        (0usize..1 << 16).prop_map(|i| {
            let quant = &fixture().workload.quantitative;
            quant[i % quant.len()].predicate.clone()
        }),
        (1990i64..2014).prop_map(|y| {
            hypre_repro::relstore::parse_predicate(&format!("dblp.year>={y}")).unwrap()
        }),
        (0u64..40).prop_map(|a| {
            hypre_repro::relstore::parse_predicate(&format!("dblp_author.aid={a}")).unwrap()
        }),
    ]
}

/// A random set-algebra expression tree over corpus predicates.
#[derive(Debug, Clone)]
enum Expr {
    Atom(Predicate),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    AndNot(Box<Expr>, Box<Expr>),
}

fn expr_tree() -> BoxedStrategy<Expr> {
    corpus_predicate()
        .prop_map(Expr::Atom)
        .boxed()
        .prop_recursive(3, 24, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone(), 0u8..3).prop_map(|(a, b, op)| {
                    let (a, b) = (Box::new(a), Box::new(b));
                    match op {
                        0 => Expr::And(a, b),
                        1 => Expr::Or(a, b),
                        _ => Expr::AndNot(a, b),
                    }
                }),
            ]
        })
}

/// Evaluates the tree over the adaptive engine, asserting the container
/// invariant on every intermediate result.
fn eval_adaptive(expr: &Expr, exec: &Executor<'_>) -> TupleSet {
    let out = match expr {
        Expr::Atom(p) => (*exec.tuple_set(p).unwrap()).clone(),
        Expr::And(a, b) => eval_adaptive(a, exec).and(&eval_adaptive(b, exec)),
        Expr::Or(a, b) => eval_adaptive(a, exec).or(&eval_adaptive(b, exec)),
        Expr::AndNot(a, b) => eval_adaptive(a, exec).and_not(&eval_adaptive(b, exec)),
    };
    assert_canonical(&out);
    out
}

/// Canonical-container invariant: rebuilding from the id list reproduces
/// the representation exactly (the container is a pure function of the
/// contents), and each container respects its cost cap.
fn assert_canonical(out: &TupleSet) {
    let rebuilt: TupleSet = out.iter().collect();
    assert_eq!(out, &rebuilt, "non-canonical container");
    assert_eq!(out.container(), rebuilt.container());
    if out.is_array() {
        assert!(out.count() <= ARRAY_MAX, "array container over the cap");
    }
    if out.is_runs() {
        assert!(
            out.heap_bytes() / 8 <= RUN_MAX,
            "run container over the cap"
        );
        assert!(
            2 * (out.heap_bytes() / 8) <= out.count(),
            "run container holding mostly unit runs"
        );
    }
}

/// Evaluates the tree over the pure-bitmap reference algebra.
fn eval_bitset(expr: &Expr, algebra: &BitsetAlgebra<'_, '_>) -> BitSet {
    match expr {
        Expr::Atom(p) => (*algebra.tuple_set(p).unwrap()).clone(),
        Expr::And(a, b) => eval_bitset(a, algebra).and(&eval_bitset(b, algebra)),
        Expr::Or(a, b) => eval_bitset(a, algebra).or(&eval_bitset(b, algebra)),
        Expr::AndNot(a, b) => eval_bitset(a, algebra).and_not(&eval_bitset(b, algebra)),
    }
}

/// Evaluates the tree over the seed `HashSet<Value>` algebra.
fn eval_hashset(expr: &Expr, algebra: &HashSetAlgebra<'_, '_>) -> HashSet<Value> {
    match expr {
        Expr::Atom(p) => (*algebra.tuple_set(p).unwrap()).clone(),
        Expr::And(a, b) => {
            let (x, y) = (eval_hashset(a, algebra), eval_hashset(b, algebra));
            x.intersection(&y).cloned().collect()
        }
        Expr::Or(a, b) => {
            let (x, y) = (eval_hashset(a, algebra), eval_hashset(b, algebra));
            x.union(&y).cloned().collect()
        }
        Expr::AndNot(a, b) => {
            let (x, y) = (eval_hashset(a, algebra), eval_hashset(b, algebra));
            x.difference(&y).cloned().collect()
        }
    }
}

fn sorted(values: impl IntoIterator<Item = Value>) -> Vec<Value> {
    let mut out: Vec<Value> = values.into_iter().collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The three algebra generations agree on random predicate trees:
    /// same ids (adaptive vs bitmap), same identities (vs the seed
    /// HashSet evaluation), same counts and emptiness, and the adaptive
    /// results keep canonical containers throughout.
    #[test]
    fn prop_three_way_algebra_agrees_on_random_trees(tree in expr_tree()) {
        let fx = fixture();
        let exec = fx.executor();
        let bitset = BitsetAlgebra::new(&exec);
        let hashset = HashSetAlgebra::new(&exec);

        let adaptive = eval_adaptive(&tree, &exec);
        let dense = eval_bitset(&tree, &bitset);
        let seed = eval_hashset(&tree, &hashset);

        // adaptive ≡ bitset: identical interned id lists
        prop_assert_eq!(
            adaptive.iter().collect::<Vec<u32>>(),
            dense.iter().collect::<Vec<u32>>()
        );
        prop_assert_eq!(adaptive.count(), dense.count());
        prop_assert_eq!(adaptive.is_empty(), dense.is_empty());

        // adaptive ≡ hashset: identical tuple identities
        prop_assert_eq!(exec.values_of(&adaptive), sorted(seed));

        // ascending, duplicate-free iteration
        let ids: Vec<u32> = adaptive.iter().collect();
        prop_assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    /// Pairwise ops between two random trees agree across generations in
    /// both argument orders (mixed containers included), and the
    /// non-materialising ops (`and_count`, `intersects`) match their
    /// materialised counterparts.
    #[test]
    fn prop_three_way_pairwise_ops_agree(a in expr_tree(), b in expr_tree()) {
        let fx = fixture();
        let exec = fx.executor();
        let bitset = BitsetAlgebra::new(&exec);

        let (xa, xb) = (eval_adaptive(&a, &exec), eval_adaptive(&b, &exec));
        let (da, db) = (eval_bitset(&a, &bitset), eval_bitset(&b, &bitset));

        for ((x, y), (p, q)) in [((&xa, &xb), (&da, &db)), ((&xb, &xa), (&db, &da))] {
            prop_assert_eq!(x.and_count(y), p.and_count(q));
            prop_assert_eq!(x.and_count(y), x.and(y).count());
            prop_assert_eq!(x.intersects(y), p.intersects(q));
            prop_assert_eq!(x.intersects(y), !x.and(y).is_empty());
            prop_assert_eq!(
                x.and_not(y).iter().collect::<Vec<u32>>(),
                p.and_not(q).iter().collect::<Vec<u32>>()
            );
            let mut and_acc = x.clone();
            and_acc.and_assign(y);
            prop_assert_eq!(&and_acc, &x.and(y), "and_assign ≡ and");
            let mut or_acc = x.clone();
            or_acc.or_assign(y);
            prop_assert_eq!(&or_acc, &x.or(y), "or_assign ≡ or");
        }
    }
}

/// A random id set shaped to exercise all three containers and their
/// boundaries: a union of a few contiguous ranges (run territory) plus
/// scattered ids (array/bitmap territory), so op results land on every
/// side of the promotion rules.
fn shaped_ids() -> impl Strategy<Value = Vec<u32>> {
    (
        prop::collection::vec((0u32..50_000, 1u32..2_000), 0..6),
        prop::collection::vec(0u32..200_000, 0..40),
    )
        .prop_map(|(ranges, scatter)| {
            let mut ids: Vec<u32> = scatter;
            for (s, l) in ranges {
                ids.extend(s..s.saturating_add(l));
            }
            ids.sort_unstable();
            ids.dedup();
            ids
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Run-container boundary property: on synthetic range-plus-scatter
    /// sets, every op agrees with plain `HashSet<u32>` semantics in both
    /// argument orders, every result keeps a canonical container, and
    /// run-edge mutations (inserts that bridge runs, removes that split
    /// them) match reference mutations exactly.
    #[test]
    fn prop_run_boundary_algebra_agrees_with_hashset(a in shaped_ids(), b in shaped_ids()) {
        let ta: TupleSet = a.iter().copied().collect();
        let tb: TupleSet = b.iter().copied().collect();
        let ha: HashSet<u32> = a.iter().copied().collect();
        let hb: HashSet<u32> = b.iter().copied().collect();
        assert_canonical(&ta);
        assert_canonical(&tb);

        for ((x, y), (p, q)) in [((&ta, &tb), (&ha, &hb)), ((&tb, &ta), (&hb, &ha))] {
            let mut want_and: Vec<u32> = p.intersection(q).copied().collect();
            want_and.sort_unstable();
            prop_assert_eq!(&x.and(y).iter().collect::<Vec<u32>>(), &want_and);
            prop_assert_eq!(x.and_count(y), want_and.len());
            prop_assert_eq!(x.intersects(y), !want_and.is_empty());
            let mut want_or: Vec<u32> = p.union(q).copied().collect();
            want_or.sort_unstable();
            prop_assert_eq!(x.or(y).iter().collect::<Vec<u32>>(), want_or);
            let mut want_diff: Vec<u32> = p.difference(q).copied().collect();
            want_diff.sort_unstable();
            prop_assert_eq!(x.and_not(y).iter().collect::<Vec<u32>>(), want_diff);
            let mut and_acc = x.clone();
            and_acc.and_assign(y);
            prop_assert_eq!(&and_acc, &x.and(y));
            let mut or_acc = x.clone();
            or_acc.or_assign(y);
            prop_assert_eq!(&or_acc, &x.or(y));
            for r in [x.and(y), x.or(y), x.and_not(y)] {
                assert_canonical(&r);
            }
        }

        // Mutations at run edges: split each run at its midpoint, then
        // re-bridge it; the set must round-trip and stay canonical.
        let mut mutated = ta.clone();
        let mut reference = ha.clone();
        let probes: Vec<u32> = a.iter().copied().take(8).collect();
        for id in &probes {
            prop_assert_eq!(mutated.remove(*id), reference.remove(id));
            prop_assert_eq!(mutated.contains(*id), false);
            assert_canonical(&mutated);
        }
        for id in &probes {
            prop_assert_eq!(mutated.insert(*id), reference.insert(*id));
            assert_canonical(&mutated);
        }
        prop_assert_eq!(&mutated, &ta, "remove/insert round trip");
    }
}

/// Builds a profile of distinct predicates with descending intensities.
fn profile_from(prefs: Vec<(Predicate, f64)>) -> Vec<PrefAtom> {
    let mut atoms: Vec<PrefAtom> = Vec::new();
    let mut seen = HashSet::new();
    for (p, v) in prefs {
        if seen.insert(p.canonical()) {
            atoms.push(PrefAtom::new(atoms.len(), p, v));
        }
    }
    atoms.sort_by(|x, y| y.intensity.total_cmp(&x.intensity));
    for (i, a) in atoms.iter_mut().enumerate() {
        a.index = i;
    }
    atoms
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// `ordered_combinations` and `top_k` are byte-identical across the
    /// three engine generations: the adaptive `Peps`, the PR 1 pure-bitmap
    /// `BitsetPeps` and the seed `SeedPeps` — same combination records
    /// (members, predicates, counts, bit-exact intensities) and the same
    /// ranked tuples with the same scores, for both variants.
    #[test]
    fn prop_peps_byte_identical_across_three_generations(
        prefs in prop::collection::vec(
            (corpus_predicate(), 0.05f64..=0.95),
            2..6,
        ),
        k in 1usize..40,
    ) {
        let fx = fixture();
        let exec = fx.executor();
        let bitset = BitsetAlgebra::new(&exec);
        let hashset = HashSetAlgebra::new(&exec);
        let atoms = profile_from(prefs);

        let pairs = PairwiseCache::build(&atoms, &exec).unwrap();
        // Pairwise counts agree across all three set representations.
        let dense_counts = bitset.pairwise_counts(&atoms).unwrap();
        let seed_counts = hashset.pairwise_counts(&atoms).unwrap();
        for ((entry, d), s) in pairs.entries().iter().zip(&dense_counts).zip(&seed_counts) {
            prop_assert_eq!((entry.i, entry.j, entry.count), *d);
            prop_assert_eq!(*d, *s);
        }

        for variant in [PepsVariant::Complete, PepsVariant::Approximate] {
            let adaptive = Peps::new(&atoms, &exec, &pairs, variant);
            let dense = BitsetPeps::new(&atoms, &bitset, &pairs, variant);
            let seed = SeedPeps::new(&atoms, &hashset, &pairs, variant);

            let order = adaptive.ordered_combinations().unwrap();
            prop_assert_eq!(&order, &dense.ordered_combinations().unwrap());
            prop_assert_eq!(&order, &seed.ordered_combinations().unwrap());

            let top = adaptive.top_k(k).unwrap();
            prop_assert_eq!(&top, &dense.top_k(k).unwrap());
            prop_assert_eq!(&top, &seed.top_k(k).unwrap());
        }
    }
}
