//! Replays the dissertation's worked examples number-for-number through
//! the public API: the §3.3 graph construction (Figures 4–8), the §4.6
//! uid=2 enhancement, and the §4.6.1 dealership scoring (Table 9).

use hypre_repro::prelude::*;
use hypre_repro::relstore::{parse_predicate, ColRef, DataType, Database, Schema, Value};

fn qt(uid: u64, pred: &str, v: f64) -> QuantitativePref {
    QuantitativePref::new(
        UserId(uid),
        parse_predicate(pred).unwrap(),
        Intensity::new(v).unwrap(),
    )
}

fn ql(uid: u64, left: &str, right: &str, v: f64) -> QualitativePref {
    QualitativePref::new(
        UserId(uid),
        parse_predicate(left).unwrap(),
        parse_predicate(right).unwrap(),
        QualIntensity::new(v).unwrap(),
    )
    .unwrap()
}

/// §3.3: the full Figure 4→8 walkthrough.
#[test]
fn section_3_3_graph_construction() {
    let user = UserId(1);
    let mut g = HypreGraph::new();

    // Fig. 4–5: quantitative preferences P1–P4.
    g.add_quantitative(&qt(1, "year>=2000 AND year<=2005", 0.3));
    g.add_quantitative(&qt(1, "year>=2005 AND year<=2009", 0.5));
    let p3 = g.add_quantitative(&qt(1, "year>=2009", 0.8));
    g.add_quantitative(&qt(1, "venue='INFOCOM'", -1.0));
    assert_eq!(g.node_count(), 4);
    assert_eq!(g.edge_count(), 0);

    // Fig. 6: relative preference P5 ≻ P6 @ 0.8, both nodes new.
    let out = g
        .add_qualitative(&ql(
            1,
            "venue='VLDB' AND year>=2010",
            "venue='VLDB' AND year<2010",
            0.8,
        ))
        .unwrap();
    assert_eq!(out.kind, EdgeKind::Prefers);
    assert_eq!(g.node_count(), 6);
    let (right_v, _) = g.node_intensity(out.right).unwrap();
    let (left_v, _) = g.node_intensity(out.left).unwrap();
    assert_eq!(right_v, 0.5, "default seed");
    assert!((left_v - 0.5 * 2f64.powf(0.8)).abs() < 1e-12, "Eq. 4.1");

    // Fig. 7: set preference P7 (venue='VLDB') ≻ P3 @ 0.2 — P3 reused.
    let out = g
        .add_qualitative(&ql(1, "venue='VLDB'", "year>=2009", 0.2))
        .unwrap();
    assert_eq!(out.right, p3, "existing node reused, not duplicated");
    assert_eq!(g.node_count(), 7);
    let (p7_v, prov) = g.node_intensity(out.left).unwrap();
    assert!((p7_v - 0.8 * 2f64.powf(0.2)).abs() < 1e-12);
    assert_eq!(prov, Provenance::SystemComputed);

    // Fig. 8: different levels of intensity — P7 ≻ P8 @ 0.3 with P8
    // having its own quantitative score 0.8.
    g.add_quantitative(&qt(1, "venue='SIGMOD'", 0.8));
    let out = g
        .add_qualitative(&ql(1, "venue='VLDB'", "venue='SIGMOD'", 0.3))
        .unwrap();
    assert_eq!(out.kind, EdgeKind::Prefers);
    assert_eq!(g.node_count(), 8);
    assert!(out.recomputed.is_empty(), "0.919 ≥ 0.8: compatible");
    g.check_invariants().unwrap();

    // The resulting profile gives the negative preference last.
    let profile = g.profile(user);
    assert_eq!(profile.len(), 8);
    assert_eq!(profile.last().unwrap().intensity, Some(-1.0));
}

/// §4.6: the uid=2 profile of Table 7 rewrites the base query into the
/// exact mixed clause printed in the dissertation.
#[test]
fn section_4_6_enhancement_produces_the_papers_where_clause() {
    let user = UserId(2);
    let mut g = HypreGraph::new();
    g.add_quantitative(&qt(2, "dblp.venue='INFOCOM'", 0.23));
    g.add_quantitative(&qt(2, "dblp.venue='PODS'", 0.14));
    g.add_quantitative(&qt(2, "dblp_author.aid=128", 0.19));
    g.add_quantitative(&qt(2, "dblp_author.aid=116", 0.14));

    let base = BaseQuery::dblp();
    let enhanced = enhance_query(&base, &g, user);
    assert_eq!(
        enhanced.query.predicate().to_string(),
        "(dblp.venue='INFOCOM' OR dblp.venue='PODS') AND \
         (dblp_author.aid=128 OR dblp_author.aid=116)"
    );
}

/// §4.6.1 / Table 9: dealership tuple scores 0.92 / 0.90 / 0.60 and the
/// t1 ≻ t2 ≻ t3 ranking Preference SQL cannot produce.
#[test]
fn section_4_6_1_dealership_scores_match_table9() {
    let mut db = Database::new();
    let cars = db
        .create_table(
            "cars",
            Schema::of(&[
                ("id", DataType::Int),
                ("price", DataType::Int),
                ("mileage", DataType::Int),
                ("make", DataType::Str),
            ]),
        )
        .unwrap();
    for (id, price, mileage, make) in [
        (1, 7_000, 43_489, "Honda"),
        (2, 16_000, 35_334, "VW"),
        (3, 20_000, 49_119, "Honda"),
    ] {
        cars.insert(vec![id.into(), price.into(), mileage.into(), make.into()])
            .unwrap();
    }
    let atoms = vec![
        PrefAtom::new(
            0,
            parse_predicate("cars.price BETWEEN 7000 AND 16000").unwrap(),
            0.8,
        ),
        PrefAtom::new(
            1,
            parse_predicate("cars.mileage BETWEEN 20000 AND 50000").unwrap(),
            0.5,
        ),
        PrefAtom::new(
            2,
            parse_predicate("cars.make IN ('BMW','Honda')").unwrap(),
            0.2,
        ),
    ];
    let exec = Executor::new(&db, BaseQuery::single("cars", ColRef::parse("cars.id")));
    let ranked = score_tuples(&exec, &atoms).unwrap();
    let expected = [(1i64, 0.92), (2, 0.9), (3, 0.6)];
    for ((tuple, score), (eid, escore)) in ranked.iter().zip(expected.iter()) {
        assert_eq!(tuple, &Value::Int(*eid));
        assert!((score - escore).abs() < 1e-12, "t{eid}: {score}");
    }
}

/// §2.1 / Tables 3–4: quantitative scores create a total order over the
/// scored movies while m6 stays outside it (no score).
#[test]
fn section_2_1_movie_scores_order() {
    let user = UserId(9);
    let mut g = HypreGraph::new();
    for (mid, score) in [(1, 0.3), (2, 0.9), (3, 0.0), (4, 0.3), (5, 0.6)] {
        g.add_quantitative(&qt(9, &format!("movie.mid={mid}"), score));
    }
    let profile = g.profile(user);
    let scores: Vec<f64> = profile.iter().filter_map(|p| p.intensity).collect();
    assert_eq!(scores, vec![0.9, 0.6, 0.3, 0.3, 0.0]);
    // m2 ≻ m5 ≻ {m1, m4 equally preferred} ≻ m3 (indifference)
    assert!(profile[0].predicate.to_string().contains("mid=2"));
    assert!(profile[1].predicate.to_string().contains("mid=5"));
}

/// Proposition 6: the bound underlying Complete PEPS's look-ahead.
#[test]
fn proposition_6_bound_is_tight() {
    for (p1, p2) in [(0.8, 0.5), (0.9, 0.3), (0.5, 0.4), (0.99, 0.1)] {
        let k = proposition6_bound(p1, p2);
        assert!(k.is_finite() && k > 0.0);
        let n = k.ceil() as i32;
        let reach = |m: i32| 1.0 - (1.0 - p2).powi(m);
        assert!(reach(n) >= p1, "ceil(K) conjuncts reach p1");
        if n > 1 {
            assert!(reach(n - 1) < p1, "K is a lower bound");
        }
    }
}

/// Proposition 7: reversing a qualitative preference negates its strength.
#[test]
fn proposition_7_reversal() {
    let p = QualitativePref::from_signed(
        UserId(1),
        parse_predicate("a=1").unwrap(),
        parse_predicate("b=2").unwrap(),
        -0.4,
    )
    .unwrap();
    // negative strength flipped the sides
    assert_eq!(p.left.to_string(), "b=2");
    assert!((p.intensity.value() - 0.4).abs() < 1e-12);
    assert_eq!(p.reversed().left.to_string(), "a=1");
}
