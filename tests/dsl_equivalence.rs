//! The DSL differential contract: every shipped example profile,
//! rewritten in the preference DSL, must be **byte-identical** to its
//! hand-built original — same replayed graph, same positive atoms, same
//! rankings at 1/2/8 workers, and the same tuple-set Arcs through a
//! shared executor memo, so a `BatchScheduler` groups a hand session and
//! its DSL twin into one evaluation. The DSL is sugar over the existing
//! model; it is never allowed to *mean* anything different.

use std::fmt::Write as _;
use std::sync::{Arc, OnceLock};

use hypre_bench::Fixture;
use hypre_repro::prelude::*;
use hypre_repro::relstore::{parse_predicate, ColRef, DataType, Database, Schema};

fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(Fixture::small)
}

/// Renders a positive profile as DSL source — one quantitative statement
/// per atom, in profile order, intensities printed with `f64`'s
/// shortest-round-trip `Display` so they re-parse bit-identically.
fn dsl_twin_of_atoms(name: &str, table: &str, atoms: &[PrefAtom]) -> String {
    let mut src = format!("PROFILE {name} OVER {table} {{\n");
    for a in atoms {
        let _ = writeln!(src, "    {} @ {};", a.predicate.canonical(), a.intensity);
    }
    src.push_str("}\n");
    src
}

/// Parses + compiles a DSL profile (no graph-derived atoms) and returns
/// its positive atoms, asserting the parse→print→parse round trip on the
/// way through.
fn compile_atoms(src: &str, user: UserId) -> Vec<PrefAtom> {
    let ast = parse_profile(src).expect("twin source parses");
    let reparsed = parse_profile(&ast.to_string()).expect("pretty-printed source parses");
    assert_eq!(ast, reparsed, "parse -> Display -> parse must be lossless");
    ast.compile(user, &DerivedCatalog::new())
        .expect("twin compiles")
        .atoms()
        .expect("twin graph is valid")
}

/// A comparable snapshot of a user's full stored profile (computed
/// intensities included), bit-exact on the scores.
fn profile_snapshot(graph: &HypreGraph, user: UserId) -> Vec<(String, Option<u64>)> {
    graph
        .profile(user)
        .into_iter()
        .map(|p| (p.predicate.canonical(), p.intensity.map(f64::to_bits)))
        .collect()
}

// ---------------------------------------------------------------------
// The three hand-built example profiles, each against a DSL twin written
// in the surface syntax (bare columns, explicit PRIOR strengths).
// ---------------------------------------------------------------------

#[test]
fn quickstart_profile_and_its_dsl_twin_are_byte_identical() {
    // examples/quickstart.rs: two scored genres plus one qualitative
    // preference whose endpoint score is computed via Eq. 4.1.
    let mut db = Database::new();
    let movies = db
        .create_table(
            "movie",
            Schema::of(&[
                ("mid", DataType::Int),
                ("title", DataType::Str),
                ("year", DataType::Int),
                ("genre", DataType::Str),
            ]),
        )
        .unwrap();
    for (mid, title, year, genre) in [
        (1, "Casablanca", 1942, "drama"),
        (2, "Psycho", 1960, "horror"),
        (3, "Schindler's List", 1993, "drama"),
        (4, "White Christmas", 1954, "comedy"),
        (5, "The Adventures of Tintin", 2011, "comedy"),
        (6, "The Girl on the Train", 2013, "thriller"),
    ] {
        movies
            .insert(vec![mid.into(), title.into(), year.into(), genre.into()])
            .unwrap();
    }

    let me = UserId(1);
    let mut hand = HypreGraph::new();
    hand.add_quantitative(&QuantitativePref::new(
        me,
        parse_predicate("movie.genre='comedy'").unwrap(),
        Intensity::new(0.9).unwrap(),
    ));
    hand.add_quantitative(&QuantitativePref::new(
        me,
        parse_predicate("movie.genre='drama'").unwrap(),
        Intensity::new(0.4).unwrap(),
    ));
    hand.add_qualitative(
        &QualitativePref::new(
            me,
            parse_predicate("movie.year>=2000").unwrap(),
            parse_predicate("movie.genre='drama'").unwrap(),
            QualIntensity::new(0.5).unwrap(),
        )
        .unwrap(),
    )
    .unwrap();

    // The same profile in the surface syntax: bare columns qualify
    // against the OVER table, the PRIOR strength is explicit.
    let src = "PROFILE quickstart OVER movie {
        genre = 'comedy' @ 0.9;
        genre = 'drama'  @ 0.4;
        (year >= 2000) PRIOR @ 0.5 (genre = 'drama');
    }";
    let ast = parse_profile(src).unwrap();
    let compiled = ast.compile(me, &DerivedCatalog::new()).unwrap();
    let dsl_graph = compiled.build_graph().unwrap();

    // Same stored profile, computed Eq. 4.1 score included, bit-exact.
    assert_eq!(
        profile_snapshot(&dsl_graph, me),
        profile_snapshot(&hand, me)
    );
    assert_eq!(compiled.atoms().unwrap(), hand.positive_profile(me));

    // Same enhanced WHERE clause and the same ranking.
    let base = BaseQuery::single("movie", ColRef::parse("movie.mid"));
    assert_eq!(
        enhance_query(&base, &dsl_graph, me)
            .query
            .predicate()
            .canonical(),
        enhance_query(&base, &hand, me)
            .query
            .predicate()
            .canonical(),
    );
    let exec = Executor::new(&db, base);
    assert_eq!(
        score_tuples(&exec, &compiled.atoms().unwrap()).unwrap(),
        score_tuples(&exec, &hand.positive_profile(me)).unwrap(),
    );
}

#[test]
fn movie_night_conflict_machinery_is_identical_through_the_dsl() {
    // examples/movie_night.rs: a negative score, a PRIOR chain, an
    // equal-preference (strength 0) edge and a cycle-closing edge. The
    // DSL twin must replay the exact same outcomes — including the inert
    // CYCLE edge and every computed score.
    let me = UserId(42);
    let mut hand = HypreGraph::new();
    hand.add_quantitative(&QuantitativePref::new(
        me,
        parse_predicate("movie.genre='comedy'").unwrap(),
        Intensity::new(0.8).unwrap(),
    ));
    hand.add_quantitative(&QuantitativePref::new(
        me,
        parse_predicate("movie.genre='horror'").unwrap(),
        Intensity::new(-0.6).unwrap(),
    ));
    for (sup, inf, strength) in [
        ("movie.genre='comedy'", "movie.genre='drama'", 0.7),
        ("movie.genre='drama'", "movie.genre='thriller'", 0.2),
        ("movie.genre='thriller'", "movie.genre='scifi'", 0.0),
        ("movie.genre='thriller'", "movie.genre='comedy'", 0.4),
    ] {
        hand.add_qualitative(
            &QualitativePref::new(
                me,
                parse_predicate(sup).unwrap(),
                parse_predicate(inf).unwrap(),
                QualIntensity::new(strength).unwrap(),
            )
            .unwrap(),
        )
        .unwrap();
    }
    hand.check_invariants().unwrap();

    let src = "PROFILE movie_night OVER movie {
        genre = 'comedy' @ 0.8;
        genre = 'horror' @ -0.6;
        (genre = 'comedy')   PRIOR @ 0.7 (genre = 'drama');
        (genre = 'drama')    PRIOR @ 0.2 (genre = 'thriller');
        (genre = 'thriller') PRIOR @ 0   (genre = 'scifi');
        (genre = 'thriller') PRIOR @ 0.4 (genre = 'comedy');
    }";
    let compiled = parse_profile(src)
        .unwrap()
        .compile(me, &DerivedCatalog::new())
        .unwrap();
    let dsl_graph = compiled.build_graph().unwrap();
    dsl_graph.check_invariants().unwrap();

    assert_eq!(
        profile_snapshot(&dsl_graph, me),
        profile_snapshot(&hand, me)
    );
    assert_eq!(compiled.atoms().unwrap(), hand.positive_profile(me));
    assert_eq!(dsl_graph.edge_kind_counts(me), hand.edge_kind_counts(me));
    assert_eq!(
        dsl_graph.quantitative_counts(me),
        hand.quantitative_counts(me)
    );
}

#[test]
fn car_dealership_ranking_is_identical_through_the_dsl() {
    // examples/car_dealership.rs: BETWEEN and IN predicates with three
    // weights; the DSL twin must reproduce Table 9's t1 > t2 > t3.
    let mut db = Database::new();
    let cars = db
        .create_table(
            "cars",
            Schema::of(&[
                ("id", DataType::Int),
                ("price", DataType::Int),
                ("mileage", DataType::Int),
                ("make", DataType::Str),
            ]),
        )
        .unwrap();
    for (id, price, mileage, make) in [
        (1, 7_000, 43_489, "Honda"),
        (2, 16_000, 35_334, "VW"),
        (3, 20_000, 49_119, "Honda"),
    ] {
        cars.insert(vec![id.into(), price.into(), mileage.into(), make.into()])
            .unwrap();
    }

    let buyer = UserId(7);
    let mut hand = HypreGraph::new();
    for (pred, intensity) in [
        ("cars.price BETWEEN 7000 AND 16000", 0.8),
        ("cars.mileage BETWEEN 20000 AND 50000", 0.5),
        ("cars.make IN ('BMW','Honda')", 0.2),
    ] {
        hand.add_quantitative(&QuantitativePref::new(
            buyer,
            parse_predicate(pred).unwrap(),
            Intensity::new(intensity).unwrap(),
        ));
    }

    let src = "PROFILE dealership OVER cars {
        price BETWEEN 7000 AND 16000    @ 0.8;
        mileage BETWEEN 20000 AND 50000 @ 0.5;
        make IN ('BMW', 'Honda')        @ 0.2;
    }";
    let dsl_atoms = compile_atoms(src, buyer);
    let hand_atoms = hand.positive_profile(buyer);
    assert_eq!(dsl_atoms, hand_atoms);

    let exec = Executor::new(&db, BaseQuery::single("cars", ColRef::parse("cars.id")));
    let ranked = score_tuples(&exec, &dsl_atoms).unwrap();
    assert_eq!(ranked, score_tuples(&exec, &hand_atoms).unwrap());
    let ids: Vec<Option<i64>> = ranked.iter().map(|(id, _)| id.as_i64()).collect();
    assert_eq!(ids, [Some(1), Some(2), Some(3)], "Table 9 order holds");
}

// ---------------------------------------------------------------------
// The DBLP study profiles: extraction-produced predicates round-trip
// through the DSL and rank byte-identically at every worker count, solo
// and batched.
// ---------------------------------------------------------------------

#[test]
fn dblp_study_profiles_rank_byte_identically_at_1_2_and_8_workers() {
    let fx = fixture();
    let exec = fx.executor();
    for (name, user) in [("rich", fx.rich_user), ("modest", fx.modest_user)] {
        let hand_atoms = fx.graph.positive_profile(user);
        assert!(!hand_atoms.is_empty(), "{name} profile must be non-empty");
        let src = dsl_twin_of_atoms(name, "dblp", &hand_atoms);
        let dsl_atoms = compile_atoms(&src, user);
        assert_eq!(dsl_atoms, hand_atoms, "{name} atoms diverged");

        // The twin resolves to the *same* tuple-set Arcs through the
        // shared executor memo — predicate identity, not just equality.
        for (h, d) in hand_atoms.iter().zip(&dsl_atoms) {
            let hs = exec.tuple_set(&h.predicate).unwrap();
            let ds = exec.tuple_set(&d.predicate).unwrap();
            assert!(
                Arc::ptr_eq(&hs, &ds),
                "{name}: twin predicate {} interned to a different set",
                d.predicate.canonical()
            );
        }

        // Byte-identical rankings and ORDER lists at every worker count,
        // for both PEPS variants.
        let reference_pairs =
            PairwiseCache::build_with(&hand_atoms, &exec, Parallelism::Sequential).unwrap();
        for variant in [PepsVariant::Complete, PepsVariant::Approximate] {
            exec.set_parallelism(Parallelism::Sequential);
            let reference = Peps::new(&hand_atoms, &exec, &reference_pairs, variant);
            let want_top = reference.top_k(25).unwrap();
            let want_order = reference.ordered_combinations().unwrap();
            for threads in [1usize, 2, 8] {
                let pairs =
                    PairwiseCache::build_with(&dsl_atoms, &exec, Parallelism::threads(threads))
                        .unwrap();
                assert_eq!(pairs.entries(), reference_pairs.entries());
                exec.set_parallelism(Parallelism::threads(threads));
                let peps = Peps::new(&dsl_atoms, &exec, &pairs, variant);
                assert_eq!(
                    peps.top_k(25).unwrap(),
                    want_top,
                    "{name}: top_k diverged at {threads} threads ({variant:?})"
                );
                assert_eq!(
                    peps.ordered_combinations().unwrap(),
                    want_order,
                    "{name}: ORDER diverged at {threads} threads ({variant:?})"
                );
            }
        }
        exec.set_parallelism(Parallelism::Sequential);
    }
}

#[test]
fn hand_and_dsl_sessions_share_one_batched_evaluation() {
    // A hand-built session and its DSL twin carry *equal* atoms over the
    // *same* tuple-set Arcs, so the scheduler must put them in one group
    // — the twin rides the original's evaluation for free, and both get
    // the same bytes as solo sequential execution.
    let fx = fixture();
    let profiles: Vec<(UserId, Vec<PrefAtom>)> = [fx.rich_user, fx.modest_user]
        .into_iter()
        .map(|u| (u, fx.graph.positive_profile(u)))
        .collect();

    let warm = fx.executor();
    for (_, atoms) in &profiles {
        for a in atoms {
            warm.tuple_set(&a.predicate).unwrap();
        }
    }
    let cache = Arc::new(ProfileCache::snapshot(&warm));

    let mut mix: Vec<BatchRequest> = Vec::new();
    for (user, hand_atoms) in &profiles {
        let src = dsl_twin_of_atoms("twin", "dblp", hand_atoms);
        let dsl_atoms = compile_atoms(&src, *user);
        mix.push(BatchRequest::new(hand_atoms.clone(), 20));
        mix.push(BatchRequest::new(dsl_atoms, 20));
    }

    for workers in [1usize, 2, 8] {
        let out = BatchScheduler::new(Parallelism::threads(workers))
            .run(&fx.db, &cache, &mix)
            .unwrap();
        assert_eq!(
            out.stats.groups,
            profiles.len(),
            "each DSL twin must share its original's group ({workers} workers)"
        );
        assert_eq!(out.stats.shared, profiles.len());
        assert_eq!(out.stats.queries_run, 0, "warmed snapshot serves SQL-free");
        for pair in out.results.chunks(2) {
            assert_eq!(
                pair[0].as_ref().unwrap(),
                pair[1].as_ref().unwrap(),
                "twin answered differently from its original"
            );
        }
        // And both match running the hand profile alone, cold.
        for (i, (_, hand_atoms)) in profiles.iter().enumerate() {
            let solo_exec = Executor::new(&fx.db, BaseQuery::dblp());
            let pairs = PairwiseCache::build(hand_atoms, &solo_exec).unwrap();
            let want = Peps::new(hand_atoms, &solo_exec, &pairs, PepsVariant::Complete)
                .top_k(20)
                .unwrap();
            assert_eq!(out.results[2 * i].as_ref().unwrap(), &want);
        }
    }
}
