//! Equivalence properties for the PR 1 bitset rewrite: on random
//! predicates over the generated DBLP corpus, the interned-bitset algebra
//! (`and`/`or`/`and_not`/`count`/iteration) must agree exactly with the
//! seed's `HashSet<Value>` evaluation, and `Peps::top_k` /
//! `ordered_combinations` must produce identical output to the
//! HashSet-based reference loop.

use std::collections::HashSet;
use std::sync::OnceLock;

use proptest::prelude::*;

use hypre_bench::baseline::{HashSetAlgebra, SeedPeps};
use hypre_bench::Fixture;
use hypre_repro::prelude::*;
use hypre_repro::relstore::{Predicate, Value};

fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(Fixture::small)
}

/// Draws a predicate from the extracted workload (a real stored
/// preference over the corpus) or a synthetic year-range/venue atom, so
/// both dense and empty tuple sets are exercised.
fn corpus_predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        (0usize..1 << 16).prop_map(|i| {
            let quant = &fixture().workload.quantitative;
            quant[i % quant.len()].predicate.clone()
        }),
        (1990i64..2014).prop_map(|y| {
            hypre_repro::relstore::parse_predicate(&format!("dblp.year>={y}")).unwrap()
        }),
        (0u64..40).prop_map(|a| {
            hypre_repro::relstore::parse_predicate(&format!("dblp_author.aid={a}")).unwrap()
        }),
    ]
}

fn sorted(values: impl IntoIterator<Item = Value>) -> Vec<Value> {
    let mut out: Vec<Value> = values.into_iter().collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Unit sets, AND (intersection), OR (union), AND-NOT (difference),
    /// popcount and ascending-id iteration all match the HashSet baseline.
    #[test]
    fn prop_bitset_algebra_matches_hashset_baseline(
        a in corpus_predicate(),
        b in corpus_predicate(),
        c in corpus_predicate(),
    ) {
        let fx = fixture();
        let exec = fx.executor();
        let baseline = HashSetAlgebra::new(&exec);

        // unit sets
        for p in [&a, &b, &c] {
            let bits = exec.tuple_set(p).unwrap();
            let hash = baseline.tuple_set(p).unwrap();
            prop_assert_eq!(bits.count(), hash.len(), "count for {}", p);
            prop_assert_eq!(bits.is_empty(), hash.is_empty());
            prop_assert_eq!(exec.tuples(p).unwrap(), sorted(hash.iter().cloned()));
        }

        let (sa, sb) = (exec.tuple_set(&a).unwrap(), exec.tuple_set(&b).unwrap());
        let (ha, hb) = (baseline.tuple_set(&a).unwrap(), baseline.tuple_set(&b).unwrap());

        // and
        let and_vals = exec.values_of(&sa.and(&sb));
        prop_assert_eq!(and_vals, sorted(ha.intersection(&hb).cloned()));
        prop_assert_eq!(sa.and_count(&sb), ha.intersection(&hb).count());
        prop_assert_eq!(sa.intersects(&sb), !ha.is_disjoint(&hb));
        prop_assert_eq!(
            exec.tuples_and(&[&a, &b, &c]).unwrap(),
            sorted(baseline.and_set(&[&a, &b, &c]).unwrap())
        );

        // or (via the mixed-clause single group and the raw bitset union)
        let or_vals = exec.values_of(&sa.or(&sb));
        prop_assert_eq!(&or_vals, &sorted(ha.union(&hb).cloned()));
        let mixed = exec.mixed_set(&[vec![&a, &b]]).unwrap();
        prop_assert_eq!(exec.values_of(&mixed), or_vals);

        // and_not
        let diff_vals = exec.values_of(&sa.and_not(&sb));
        prop_assert_eq!(diff_vals, sorted(ha.difference(&hb).cloned()));

        // iteration is ascending and duplicate-free
        let ids: Vec<u32> = sa.iter().collect();
        prop_assert!(ids.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(ids.len(), sa.count());

        // mixed clause: (a ∪ b) ∩ c
        let groups = [vec![&a, &b], vec![&c]];
        let bits_mixed = exec.mixed_set(&groups).unwrap();
        let hash_mixed = baseline.mixed_set(&groups).unwrap();
        prop_assert_eq!(exec.values_of(&bits_mixed), sorted(hash_mixed));
    }
}

/// Builds a profile of distinct predicates with descending intensities.
fn profile_from(prefs: Vec<(Predicate, f64)>) -> Vec<PrefAtom> {
    let mut atoms: Vec<PrefAtom> = Vec::new();
    let mut seen = HashSet::new();
    for (p, v) in prefs {
        if seen.insert(p.canonical()) {
            atoms.push(PrefAtom::new(atoms.len(), p, v));
        }
    }
    atoms.sort_by(|x, y| y.intensity.total_cmp(&x.intensity));
    for (i, a) in atoms.iter_mut().enumerate() {
        a.index = i;
    }
    atoms
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `ordered_combinations` and `top_k` over the bitset engine are
    /// byte-identical to the HashSet reference: same combination records
    /// (the counts come out of hash intersections on the reference side)
    /// and the same ranked tuples with the same scores.
    #[test]
    fn prop_peps_output_identical_to_hashset_reference(
        prefs in prop::collection::vec(
            (corpus_predicate(), 0.05f64..=0.95),
            2..6,
        ),
        k in 1usize..40,
    ) {
        let fx = fixture();
        let exec = fx.executor();
        let baseline = HashSetAlgebra::new(&exec);
        let atoms = profile_from(prefs);

        let pairs = PairwiseCache::build(&atoms, &exec).unwrap();
        // Pairwise counts equal the hash-intersection counts.
        for (entry, (i, j, count)) in pairs
            .entries()
            .iter()
            .zip(baseline.pairwise_counts(&atoms).unwrap())
        {
            prop_assert_eq!((entry.i, entry.j, entry.count), (i, j, count));
        }

        let peps = Peps::new(&atoms, &exec, &pairs, PepsVariant::Complete);
        let seed = SeedPeps::new(&atoms, &baseline, &pairs, PepsVariant::Complete);

        // ordered_combinations is byte-identical to the seed algorithm
        // (same records, same counts, same bit-exact intensities).
        let order = peps.ordered_combinations().unwrap();
        prop_assert_eq!(&order, &seed.ordered_combinations().unwrap());

        // top_k is byte-identical to the seed's HashMap-ranked top_k —
        // rounds, expansion and early termination included.
        let got = peps.top_k(k).unwrap();
        let want = seed.top_k(k).unwrap();
        prop_assert_eq!(&got, &want);

        // And it agrees with the brute-force residual scorer up to
        // floating-point association (PEPS multiplies `1−p` factors in
        // chain order, the scorer in profile order).
        let brute = baseline.score_tuples(&atoms).unwrap();
        prop_assert_eq!(got.len(), k.min(brute.len()));
        let by_tuple: std::collections::HashMap<&Value, f64> =
            brute.iter().map(|(t, g)| (t, *g)).collect();
        prop_assert!(got.windows(2).all(|w| w[0].1 >= w[1].1), "descending scores");
        for (t, g) in &got {
            let bg = by_tuple[t];
            prop_assert!((g - bg).abs() < 1e-9, "{t}: {g} vs {bg}");
        }
    }
}
