//! The batched-scheduling determinism contract: `BatchScheduler` over
//! randomized session mixes (overlapping and disjoint profiles, k ∈
//! {1, 10, 100}, mixed PEPS variants) must be **byte-identical** to
//! running each session alone on a fresh sequential executor — at every
//! worker count and in every batch composition. Plus the epoch
//! lifecycle: a batch in flight across an `EpochCache::ingest` answers
//! on its pinned epoch, a drained session answers on the new one, both
//! verified against cold executors (the `tests/live_corpus.rs` shape).

use std::sync::{Arc, OnceLock};

use hypre_bench::ingest::split_corpus;
use hypre_bench::{profile_variants, Fixture};
use hypre_repro::prelude::*;
use hypre_repro::relstore::{Database, Predicate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(Fixture::small)
}

/// The distinct profile identities the mixes draw from: the two study
/// users' profiles plus overlapping slices and a blended variant.
fn variants() -> Vec<Vec<PrefAtom>> {
    let fx = fixture();
    profile_variants(
        &fx.graph.positive_profile(fx.rich_user),
        &fx.graph.positive_profile(fx.modest_user),
    )
}

/// A snapshot warmed with every variant predicate, so batches run SQL-free.
fn warmed_cache() -> Arc<ProfileCache> {
    let warm = fixture().executor();
    for profile in variants() {
        for atom in &profile {
            warm.tuple_set(&atom.predicate).unwrap();
        }
    }
    Arc::new(ProfileCache::snapshot(&warm))
}

/// A randomized session mix over the profile variants.
fn random_mix(seed: u64, sessions: usize) -> Vec<BatchRequest> {
    let profiles = variants();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..sessions)
        .map(|_| {
            let profile = profiles[rng.gen_range(0..profiles.len())].clone();
            let k = [1usize, 10, 100][rng.gen_range(0..3usize)];
            let variant = if rng.gen_bool(0.3) {
                PepsVariant::Approximate
            } else {
                PepsVariant::Complete
            };
            BatchRequest::new(profile, k).with_variant(variant)
        })
        .collect()
}

/// The reference: the request run alone on a fresh, fully sequential
/// executor (cold — its own SQL, its own interning).
fn solo(db: &Database, req: &BatchRequest) -> Vec<RankedTuple> {
    let exec = Executor::new(db, BaseQuery::dblp());
    let pairs = PairwiseCache::build(&req.atoms, &exec).unwrap();
    Peps::new(&req.atoms, &exec, &pairs, req.variant)
        .top_k(req.k)
        .unwrap()
}

#[test]
fn batched_matches_solo_sequential_at_every_worker_count() {
    let fx = fixture();
    let cache = warmed_cache();
    for seed in [11u64, 42, 2026] {
        let mix = random_mix(seed, 12);
        let want: Vec<Vec<RankedTuple>> = mix.iter().map(|req| solo(&fx.db, req)).collect();
        for workers in [1usize, 2, 8] {
            let out = BatchScheduler::new(Parallelism::threads(workers))
                .run(&fx.db, &cache, &mix)
                .unwrap();
            for (i, (got, want)) in out.results.iter().zip(&want).enumerate() {
                assert_eq!(
                    got.as_ref().unwrap(),
                    want,
                    "request {i} diverged from solo execution (seed {seed}, {workers} workers)"
                );
            }
            assert_eq!(out.stats.requests, mix.len());
            assert!(
                out.stats.groups < mix.len(),
                "a 12-session mix over {} profiles must share evaluations \
                 (got {} groups)",
                variants().len(),
                out.stats.groups
            );
            assert_eq!(out.stats.shared, mix.len() - out.stats.groups);
            assert_eq!(out.stats.queries_run, 0, "warmed snapshot serves SQL-free");
        }
    }
}

#[test]
fn skewed_batches_stay_byte_identical_under_work_stealing() {
    // PR 8: shared evaluations now run their rounds with work-stealing
    // workers. Build a deliberately skewed mix — one heavy profile
    // repeated (one big group whose expansion dominates) next to light
    // singletons — and sweep odd worker counts, which give the stealing
    // scheduler uneven initial deques. Every answer must still match
    // solo sequential execution exactly.
    let fx = fixture();
    let cache = warmed_cache();
    let profiles = variants();
    let heavy = profiles
        .iter()
        .max_by_key(|p| p.len())
        .expect("variants is non-empty")
        .clone();
    let mut mix: Vec<BatchRequest> = (0..4)
        .map(|_| BatchRequest::new(heavy.clone(), 100))
        .collect();
    for p in &profiles {
        mix.push(BatchRequest::new(p.clone(), 5));
    }
    let want: Vec<Vec<RankedTuple>> = mix.iter().map(|req| solo(&fx.db, req)).collect();
    for workers in [3usize, 5, 8] {
        let out = BatchScheduler::new(Parallelism::threads(workers))
            .run(&fx.db, &cache, &mix)
            .unwrap();
        for (i, (got, want)) in out.results.iter().zip(&want).enumerate() {
            assert_eq!(
                got.as_ref().unwrap(),
                want,
                "request {i} diverged under stealing ({workers} workers)"
            );
        }
        assert_eq!(
            out.stats.groups,
            profiles.len(),
            "the four heavy copies share one evaluation"
        );
    }
}

#[test]
fn batch_composition_cannot_change_an_answer() {
    // The same request must get the same bytes whether it rides alone,
    // with strangers, or duplicated — batching dedups computation, it
    // never blends it.
    let fx = fixture();
    let cache = warmed_cache();
    let scheduler = BatchScheduler::sequential();
    let mix = random_mix(7, 10);
    let in_batch = scheduler.run(&fx.db, &cache, &mix).unwrap();
    for (i, req) in mix.iter().enumerate() {
        let alone = scheduler
            .run(&fx.db, &cache, std::slice::from_ref(req))
            .unwrap();
        assert_eq!(
            alone.results[0].as_ref().unwrap(),
            in_batch.results[i].as_ref().unwrap(),
            "request {i} answered differently alone vs in a batch of {}",
            mix.len()
        );
    }
    // And a doubled batch answers both copies identically.
    let mut doubled = mix.clone();
    doubled.extend(mix.iter().cloned());
    let out = scheduler.run(&fx.db, &cache, &doubled).unwrap();
    for i in 0..mix.len() {
        assert_eq!(
            out.results[i].as_ref().unwrap(),
            out.results[i + mix.len()].as_ref().unwrap(),
            "duplicated request {i} diverged inside one batch"
        );
    }
}

#[test]
fn mixed_k_inside_one_group_matches_every_standalone_k() {
    // k ∈ {1, 10, 100} over the *same* profile lands in one group and
    // one shared round evaluation; each k's ranking must still be what
    // a standalone top_k(k) returns — including the early-termination
    // point, which differs per k.
    let fx = fixture();
    let cache = warmed_cache();
    let profile = variants().remove(0);
    let mix: Vec<BatchRequest> = [1usize, 10, 100, 10, 1]
        .into_iter()
        .map(|k| BatchRequest::new(profile.clone(), k))
        .collect();
    let out = BatchScheduler::sequential()
        .run(&fx.db, &cache, &mix)
        .unwrap();
    assert_eq!(out.stats.groups, 1, "one profile identity, one evaluation");
    for (got, req) in out.results.iter().zip(&mix) {
        assert_eq!(got.as_ref().unwrap(), &solo(&fx.db, req), "k = {}", req.k);
    }
}

#[test]
fn in_flight_batches_pin_their_epoch_and_drained_sessions_pick_up_the_new_one() {
    // The live-corpus lifecycle, batched: warm on the base corpus,
    // publish epoch 1, pin a session; ingest the delta to epoch 2 while
    // the session is still pinned. Batches through the pinned session
    // answer epoch-1 results (verified against a cold executor on the
    // base corpus); after drain() the same batches answer epoch-2
    // results (verified against a cold executor on the full corpus).
    let fx = fixture();
    let split = split_corpus(&fx.dataset, 0.6);
    let profiles = variants();
    let predicates: Vec<&Predicate> = profiles
        .iter()
        .flat_map(|p| p.iter().map(|a| &a.predicate))
        .collect();
    let cache = ProfileCache::warm(&split.base, BaseQuery::dblp(), predicates).unwrap();
    let epochs = EpochCache::new(cache);
    let mut session = EpochSession::open(&epochs);
    assert_eq!(session.epoch(), 1);

    let mix: Vec<BatchRequest> = profiles
        .iter()
        .map(|p| BatchRequest::new(p.clone(), 20))
        .collect();
    let want_old: Vec<Vec<RankedTuple>> = mix.iter().map(|r| solo(&split.base, r)).collect();
    let want_new: Vec<Vec<RankedTuple>> = mix.iter().map(|r| solo(&split.full, r)).collect();
    assert_ne!(
        want_old[0], want_new[0],
        "the delta must actually move the top-20"
    );

    let scheduler = BatchScheduler::new(Parallelism::threads(2));
    let before = scheduler.run(&split.full, &session.cache(), &mix).unwrap();
    for (got, want) in before.results.iter().zip(&want_old) {
        assert_eq!(got.as_ref().unwrap(), want, "epoch-1 batch");
    }

    // The delta goes live mid-serving: epoch 2 published, session still
    // pinned to epoch 1 — its batches must keep answering old results.
    let report = epochs.ingest(&split.full, 0).unwrap();
    assert!(report.new_tuples > 0);
    assert_eq!(epochs.current_epoch(), 2);
    assert_eq!(session.epoch(), 1, "no stop-the-world: the pin holds");
    let pinned = scheduler.run(&split.full, &session.cache(), &mix).unwrap();
    for (got, want) in pinned.results.iter().zip(&want_old) {
        assert_eq!(
            got.as_ref().unwrap(),
            want,
            "a batch in flight on the pinned epoch must not see the ingest"
        );
    }

    // Drain at the batch boundary: the very next batch serves epoch 2.
    assert!(session.drain(&epochs), "a newer epoch was published");
    assert_eq!(session.epoch(), 2);
    let after = scheduler.run(&split.full, &session.cache(), &mix).unwrap();
    for (got, want) in after.results.iter().zip(&want_new) {
        assert_eq!(got.as_ref().unwrap(), want, "epoch-2 batch");
    }
    assert_eq!(
        after.stats.queries_run, 0,
        "the ingested epoch serves SQL-free"
    );
}
