//! Substrate-level integration: TSV persistence round-trips through the
//! relational engine, index/scan equivalence, and graph-query consistency
//! on a realistic corpus.

use hypre_repro::dblp::{extract, gen, load, tsv};
use hypre_repro::graphstore::{Dir, NodeQuery, PropValue};
use hypre_repro::prelude::*;
use hypre_repro::relstore::{parse_predicate, ColRef, IndexKind, SelectQuery};

#[test]
fn tsv_roundtrip_preserves_query_results() {
    let dataset = gen::generate(&gen::GeneratorConfig::tiny(99));
    let text = tsv::to_tsv(&dataset);
    let back = tsv::from_tsv(&text).expect("roundtrip parses");
    let db_a = load::load(&dataset).unwrap();
    let db_b = load::load(&back).unwrap();
    for pred in [
        "dblp.year>=2005",
        "dblp.venue='VLDB'",
        "dblp_author.aid=3",
        "dblp.year BETWEEN 1995 AND 2000",
    ] {
        let q = |db| {
            SelectQuery::from("dblp")
                .join(
                    "dblp_author",
                    ColRef::parse("dblp.pid"),
                    ColRef::parse("dblp_author.pid"),
                )
                .filter(parse_predicate(pred).unwrap())
                .count_distinct(db, &ColRef::parse("dblp.pid"))
                .unwrap()
        };
        assert_eq!(q(&db_a), q(&db_b), "{pred}");
    }
}

#[test]
fn index_and_scan_paths_agree_on_generated_data() {
    let dataset = gen::generate(&gen::GeneratorConfig::tiny(7));
    // load() builds indexes; a manual load without indexes is the oracle.
    let indexed = load::load(&dataset).unwrap();
    let mut bare = relstore::Database::new();
    for name in ["dblp", "author", "citation", "dblp_author"] {
        let src = indexed.table(name).unwrap();
        let dst = bare.create_table(name, src.schema().clone()).unwrap();
        for (_, row) in src.scan() {
            dst.insert(row.to_vec()).unwrap();
        }
    }
    let venues: Vec<String> = dataset.venues().iter().map(|v| v.to_string()).collect();
    for venue in venues.iter().take(6) {
        let q = SelectQuery::from("dblp")
            .filter(parse_predicate(&format!("dblp.venue='{venue}'")).unwrap());
        assert_eq!(
            q.count(&indexed).unwrap(),
            q.count(&bare).unwrap(),
            "venue {venue}"
        );
    }
    // range through the BTree index vs bare scan
    let q = SelectQuery::from("dblp")
        .filter(parse_predicate("dblp.year BETWEEN 1995 AND 2005").unwrap());
    assert_eq!(q.count(&indexed).unwrap(), q.count(&bare).unwrap());
}

#[test]
fn late_index_creation_matches_preloaded_indexes() {
    let dataset = gen::generate(&gen::GeneratorConfig::tiny(13));
    let indexed = load::load(&dataset).unwrap();
    let mut late = relstore::Database::new();
    for name in ["dblp", "dblp_author"] {
        let src = indexed.table(name).unwrap();
        let dst = late.create_table(name, src.schema().clone()).unwrap();
        for (_, row) in src.scan() {
            dst.insert(row.to_vec()).unwrap();
        }
    }
    // backfill an index *after* loading — must answer identically
    late.table_mut("dblp")
        .unwrap()
        .create_index("venue", IndexKind::Hash)
        .unwrap();
    let venue = dataset.papers[0].venue.clone();
    let q = SelectQuery::from("dblp")
        .filter(parse_predicate(&format!("dblp.venue='{venue}'")).unwrap());
    assert_eq!(q.count(&indexed).unwrap(), q.count(&late).unwrap());
}

#[test]
fn hypre_graph_is_queryable_through_graphstore_directly() {
    // The HYPRE graph is an ordinary property graph underneath: the
    // Cypher-style layer must see exactly what the typed API sees.
    let dataset = gen::generate(&gen::GeneratorConfig::tiny(21));
    let workload = extract::extract(&dataset, &extract::ExtractionConfig::default());
    let mut graph = HypreGraph::new();
    graph
        .load(&workload.quantitative, &workload.qualitative)
        .unwrap();
    let user = *graph.users().first().unwrap();

    let via_api = graph.user_nodes(user).len();
    let via_query = NodeQuery::new(graph.graph())
        .label(NODE_LABEL)
        .prop_eq("uid", PropValue::Int(user.0 as i64))
        .count();
    assert_eq!(via_api, via_query);

    // intensity-descending scan matches the typed profile order
    let profile = graph.profile(user);
    let scored: Vec<_> = NodeQuery::new(graph.graph())
        .label(NODE_LABEL)
        .prop_eq("uid", PropValue::Int(user.0 as i64))
        .has_prop("intensity")
        .order_by("intensity", Dir::Desc)
        .run();
    let typed_scored: Vec<_> = profile
        .iter()
        .filter(|p| p.intensity.is_some())
        .map(|p| p.node)
        .collect();
    assert_eq!(scored.len(), typed_scored.len());
    // same intensity sequence (node tie-break may differ between layers)
    let seq = |nodes: &[graphstore::NodeId]| -> Vec<f64> {
        nodes
            .iter()
            .map(|&n| graph.node_intensity(n).unwrap().0)
            .collect()
    };
    assert_eq!(seq(&scored), seq(&typed_scored));
}

#[test]
fn executor_set_algebra_matches_flat_sql_on_single_table_predicates() {
    // For predicates that only touch the driving table, per-preference
    // existential semantics and flat SQL coincide — verify on real data.
    let dataset = gen::generate(&gen::GeneratorConfig::tiny(31));
    let db = load::load(&dataset).unwrap();
    let exec = Executor::new(&db, BaseQuery::dblp());
    let a = parse_predicate("dblp.year>=2000").unwrap();
    let b = parse_predicate("dblp.year<=2005").unwrap();
    let set_based = exec.count_and(&[&a, &b]).unwrap();
    let flat = SelectQuery::from("dblp")
        .filter(a.clone().and(b.clone()))
        .count_distinct(&db, &ColRef::parse("dblp.pid"))
        .unwrap();
    assert_eq!(set_based, flat);
}
