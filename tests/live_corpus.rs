//! Live-corpus equivalence and failure-atomicity over the generated
//! DBLP corpus: an epoch-advanced snapshot (warm on the base corpus,
//! then `ingest_delta` the appended rows) must rank byte-identically to
//! a fresh executor over the full corpus at every worker count; stale
//! snapshots must surface as typed errors, never panics; and every
//! injected query fault must either retry to success or leave the
//! previous epoch intact and serving.

use std::sync::{Arc, OnceLock};

use hypre_bench::ingest::{split_corpus, CorpusSplit};
use hypre_bench::Fixture;
use hypre_repro::prelude::*;
use hypre_repro::relstore::{FailSchedule, FailingDriver, Predicate};

fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(Fixture::small)
}

/// A 95 % base / 5 % delta split of the fixture corpus — the live-ingest
/// shape of the acceptance criteria.
fn split() -> CorpusSplit {
    split_corpus(&fixture().dataset, 0.95)
}

fn rich_atoms() -> Vec<PrefAtom> {
    fixture().graph.positive_profile(fixture().rich_user)
}

fn warm_on(db: &hypre_repro::relstore::Database, atoms: &[PrefAtom]) -> ProfileCache {
    let predicates: Vec<&Predicate> = atoms.iter().map(|a| &a.predicate).collect();
    ProfileCache::warm(db, BaseQuery::dblp(), predicates).expect("warm-up succeeds")
}

/// A small distinct-predicate subset, to keep the exhaustive
/// fault-injection sweep proportional to a handful of query ops.
fn few_atoms() -> Vec<PrefAtom> {
    let mut seen = std::collections::HashSet::new();
    rich_atoms()
        .into_iter()
        .filter(|a| seen.insert(a.predicate.canonical()))
        .take(6)
        .collect()
}

#[test]
fn a_changed_corpus_is_a_typed_error_not_a_panic() {
    let split = split();
    let atoms = rich_atoms();
    let cache = Arc::new(warm_on(&split.base, &atoms));

    // Strict open over the grown corpus: typed staleness, not a panic.
    let Err(err) = Executor::with_cache(&split.full, Arc::clone(&cache)) else {
        panic!("grown corpus must be stale for a strict session");
    };
    match &err {
        HypreError::StaleSnapshot {
            table,
            warmed,
            current,
        } => {
            assert_eq!(table, "dblp");
            assert!(current > warmed, "corpus grew");
        }
        other => panic!("expected StaleSnapshot, got {other}"),
    }
    assert!(err.to_string().contains("dblp"), "error names the table");

    // A pinned session tolerates append-only growth: it keeps serving
    // the epoch it started on.
    let pinned = Executor::with_cache_pinned(&split.full, Arc::clone(&cache))
        .expect("append-only growth is fine for a pinned session");
    let pairs = PairwiseCache::build(&atoms, &pinned).unwrap();
    assert!(!Peps::new(&atoms, &pinned, &pairs, PepsVariant::Complete)
        .top_k(10)
        .unwrap()
        .is_empty());
    assert_eq!(
        pinned.queries_run(),
        0,
        "everything comes from the snapshot"
    );

    // A corpus that *shrank* is stale even for a pinned session.
    assert!(matches!(
        Executor::with_cache_pinned(&split.base, Arc::new(warm_on(&split.full, &atoms))),
        Err(HypreError::StaleSnapshot { .. })
    ));
}

#[test]
fn ingested_snapshot_matches_a_fresh_executor_at_every_worker_count() {
    let split = split();
    let atoms = rich_atoms();
    let base_cache = warm_on(&split.base, &atoms);
    let (next, report) = base_cache.ingest_delta(&split.full).unwrap();
    assert!(!report.is_noop(), "a 5% delta must register");
    assert!(report.new_tuples > 0, "appended papers intern new ids");
    let next = Arc::new(next);

    // Ground truth: a cold executor over the full corpus.
    let fresh = Executor::new(&split.full, BaseQuery::dblp());
    let fresh_pairs = PairwiseCache::build(&atoms, &fresh).unwrap();
    for variant in [PepsVariant::Complete, PepsVariant::Approximate] {
        let reference = Peps::new(&atoms, &fresh, &fresh_pairs, variant);
        let want_top = reference.top_k(25).unwrap();
        let want_order = reference.ordered_combinations().unwrap();
        for threads in [1usize, 2, 8] {
            let session = Executor::with_cache(&split.full, Arc::clone(&next))
                .expect("ingested snapshot matches the grown corpus")
                .with_parallelism(Parallelism::threads(threads));
            let pairs = PairwiseCache::build(&atoms, &session).unwrap();
            let peps = Peps::new(&atoms, &session, &pairs, variant);
            assert_eq!(
                peps.top_k(25).unwrap(),
                want_top,
                "top_k diverged at {threads} threads ({variant:?})"
            );
            assert_eq!(
                peps.ordered_combinations().unwrap(),
                want_order,
                "ordered_combinations diverged at {threads} threads ({variant:?})"
            );
            assert_eq!(
                session.queries_run(),
                0,
                "ingest re-derived nothing via SQL"
            );
        }
    }
}

#[test]
fn pairwise_refresh_over_the_delta_matches_a_full_rebuild() {
    let split = split();
    let atoms = rich_atoms();
    let base_cache = Arc::new(warm_on(&split.base, &atoms));
    let old_session = Executor::with_cache(&split.base, Arc::clone(&base_cache)).unwrap();
    let old_pairs = PairwiseCache::build(&atoms, &old_session).unwrap();

    let (next, report) = base_cache.ingest_delta(&split.full).unwrap();
    let flags = report.changed_flags(&atoms);
    assert!(flags.iter().any(|&c| c), "the delta touches some atoms");
    let session = Executor::with_cache(&split.full, Arc::new(next)).unwrap();
    let refreshed = old_pairs.refresh_for(&atoms, &session, &flags).unwrap();
    let rebuilt = PairwiseCache::build(&atoms, &session).unwrap();
    assert_eq!(refreshed.entries(), rebuilt.entries());
    assert_eq!(refreshed.applicable_count(), rebuilt.applicable_count());
}

#[test]
fn ingest_of_an_unchanged_corpus_is_a_noop() {
    let split = split();
    let atoms = rich_atoms();
    let cache = warm_on(&split.full, &atoms);
    let (same, report) = cache.ingest_delta(&split.full).unwrap();
    assert!(report.is_noop());
    assert_eq!(report.new_tuples, 0);
    assert_eq!(same.len(), cache.len());

    // Through the epoch layer a no-op publishes nothing.
    let epochs = EpochCache::new(cache);
    assert!(epochs.ingest(&split.full, 0).unwrap().is_noop());
    assert_eq!(
        epochs.current_epoch(),
        1,
        "no-op deltas don't advance epochs"
    );
}

#[test]
fn epoch_sessions_drain_without_stop_the_world() {
    // A deep 40 % delta, so the appended papers demonstrably move the
    // top-20 (a 5 % tail delta can leave the head of the ranking
    // untouched, which would make "old answers" == "new answers").
    let split = split_corpus(&fixture().dataset, 0.6);
    let atoms = rich_atoms();
    let epochs = EpochCache::new(warm_on(&split.base, &atoms));

    // Reference answers over the base and the grown corpus.
    let top_of = |db: &hypre_repro::relstore::Database| {
        let exec = Executor::new(db, BaseQuery::dblp());
        let pairs = PairwiseCache::build(&atoms, &exec).unwrap();
        Peps::new(&atoms, &exec, &pairs, PepsVariant::Complete)
            .top_k(20)
            .unwrap()
    };
    let want_old = top_of(&split.base);
    let want_new = top_of(&split.full);
    assert_ne!(
        want_old, want_new,
        "the delta must actually move the ranking"
    );

    // A session opens on epoch 1, the corpus grows, a new epoch is
    // published — the pinned session keeps serving epoch-1 answers,
    // lock-free, with zero SQL.
    let mut session = EpochSession::open(&epochs);
    assert_eq!(session.epoch(), 1);
    let serve = |session: &EpochSession, db| {
        let exec = session
            .executor(db)
            .expect("pinned sessions survive appends");
        let pairs = PairwiseCache::build(&atoms, &exec).unwrap();
        let top = Peps::new(&atoms, &exec, &pairs, PepsVariant::Complete)
            .top_k(20)
            .unwrap();
        assert_eq!(exec.queries_run(), 0);
        top
    };
    assert_eq!(serve(&session, &split.base), want_old);

    let report = epochs.ingest(&split.full, 0).unwrap();
    assert!(!report.is_noop());
    assert_eq!(epochs.current_epoch(), 2);
    assert_eq!(
        session.epoch(),
        1,
        "publishing does not move pinned sessions"
    );
    assert_eq!(
        serve(&session, &split.full),
        want_old,
        "the old epoch keeps serving its own answers mid-ingest"
    );
    assert_eq!(epochs.retired_count(), 1, "epoch 1 is held for the session");

    // At its next boundary the session drains onto epoch 2 and the
    // retired epoch is evicted.
    assert!(session.drain(&epochs));
    assert_eq!(session.epoch(), 2);
    assert_eq!(serve(&session, &split.full), want_new);
    assert!(!session.drain(&epochs), "drain is idempotent");
    assert_eq!(epochs.retired_count(), 0);
    assert_eq!(epochs.evicted_count(), 1);
}

#[test]
fn every_warm_up_fault_retries_to_success_or_fails_atomically() {
    let split = split();
    let atoms = few_atoms();
    let predicates: Vec<&Predicate> = atoms.iter().map(|a| &a.predicate).collect();

    // Probe how many query operations one warm-up performs.
    let probe = FailingDriver::new(split.base.clone(), FailSchedule::never());
    let clean = ProfileCache::warm(probe.database(), BaseQuery::dblp(), predicates.clone())
        .expect("unfaulted warm-up succeeds");
    let ops = probe.schedule().ops_started();
    assert!(ops >= predicates.len() as u64, "one query per predicate");

    for n in 1..=ops {
        // Zero retries: the nth operation fails and the whole warm-up
        // reports a typed exhaustion — no partial snapshot escapes.
        let driver = FailingDriver::new(split.base.clone(), FailSchedule::nth(n));
        let Err(err) = ProfileCache::warm_with_retry(
            driver.database(),
            BaseQuery::dblp(),
            predicates.clone(),
            0,
        ) else {
            panic!("op {n}: scheduled fault must surface");
        };
        assert!(
            matches!(err, HypreError::WarmUpFailed { attempts: 1, .. }),
            "op {n}: got {err}"
        );
        assert_eq!(driver.schedule().injected(), 1);

        // One retry: the second attempt runs on later ordinals and
        // completes; the result is indistinguishable from a clean warm.
        let driver = FailingDriver::new(split.base.clone(), FailSchedule::nth(n));
        let warmed = ProfileCache::warm_with_retry(
            driver.database(),
            BaseQuery::dblp(),
            predicates.clone(),
            1,
        )
        .expect("retry must succeed past a one-shot fault");
        assert_eq!(warmed.len(), clean.len());
        assert_eq!(warmed.tuple_universe(), clean.tuple_universe());
    }
}

#[test]
fn every_ingest_fault_leaves_the_previous_epoch_serving() {
    let split = split();
    let atoms = few_atoms();
    let epochs = EpochCache::new(warm_on(&split.base, &atoms));

    // Probe how many query operations one delta ingest performs.
    let probe = FailingDriver::new(split.full.clone(), FailSchedule::never());
    epochs
        .current()
        .cache()
        .ingest_delta(probe.database())
        .expect("unfaulted ingest succeeds");
    let ops = probe.schedule().ops_started();
    assert!(ops >= 1, "the delta re-scores at least one predicate");

    let serve = |db| {
        let session = EpochSession::open(&epochs);
        let exec = session.executor(db).unwrap();
        let pairs = PairwiseCache::build(&atoms, &exec).unwrap();
        Peps::new(&atoms, &exec, &pairs, PepsVariant::Complete)
            .top_k(10)
            .unwrap()
    };
    let before = serve(&split.base);

    for n in 1..=ops {
        let driver = FailingDriver::new(split.full.clone(), FailSchedule::nth(n));
        let err = epochs.ingest(driver.database(), 0).err();
        assert!(
            matches!(err, Some(HypreError::WarmUpFailed { .. })),
            "op {n}: fault must surface as a typed ingest failure"
        );
        assert_eq!(epochs.current_epoch(), 1, "op {n}: failed ingest published");
        assert_eq!(
            serve(&split.full),
            before,
            "op {n}: the previous epoch must keep serving"
        );
    }

    // A bounded retry rides over any single-shot fault: the second
    // attempt's operations land on fresh ordinals.
    let driver = FailingDriver::new(split.full.clone(), FailSchedule::nth(1));
    let report = epochs
        .ingest(driver.database(), 1)
        .expect("one retry clears a one-shot fault");
    assert!(!report.is_noop());
    assert_eq!(epochs.current_epoch(), 2, "the retried ingest published");
    assert_eq!(driver.schedule().injected(), 1);
}
