//! Property-based tests (proptest) for the model's invariants, run across
//! crates: intensity algebra, propagation axioms, graph invariants under
//! random preference streams, PEPS-vs-brute-force ranking equality, TA
//! correctness, parser round-trips (predicate and preference-DSL) and
//! skyline dominance.

use proptest::prelude::*;

use hypre_repro::core::dsl::{AtomAst, AtomKind, Pos, PrefExpr, ProfileAst};
use hypre_repro::prelude::*;
use hypre_repro::relstore::{
    parse_predicate, ColRef, DataType, Database, Predicate, Schema, Value,
};
use hypre_repro::topk::{threshold_algorithm, GradedList};

// ---------------------------------------------------------------------
// strategies
// ---------------------------------------------------------------------

fn intensity_value() -> impl Strategy<Value = f64> {
    (-1.0f64..=1.0).prop_map(|v| (v * 1e6).round() / 1e6)
}

fn positive_intensity() -> impl Strategy<Value = f64> {
    (0.01f64..=1.0).prop_map(|v| (v * 1e6).round() / 1e6)
}

fn qual_strength() -> impl Strategy<Value = f64> {
    (0.0f64..=1.0).prop_map(|v| (v * 1e6).round() / 1e6)
}

/// A small universe of atomic predicates over two attributes.
fn atom_predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        (0u8..6).prop_map(|v| parse_predicate(&format!("dblp.venue='V{v}'")).unwrap()),
        (0u8..8).prop_map(|a| parse_predicate(&format!("dblp_author.aid={a}")).unwrap()),
        (1990i64..2012).prop_map(|y| parse_predicate(&format!("dblp.year>={y}")).unwrap()),
    ]
}

/// One random preference event for the graph stream.
#[derive(Debug, Clone)]
enum Event {
    Quant(Predicate, f64),
    Qual(Predicate, Predicate, f64),
}

fn event() -> impl Strategy<Value = Event> {
    prop_oneof![
        (atom_predicate(), intensity_value()).prop_map(|(p, v)| Event::Quant(p, v)),
        (atom_predicate(), atom_predicate(), qual_strength())
            .prop_map(|(l, r, s)| Event::Qual(l, r, s)),
    ]
}

// ---------------------------------------------------------------------
// intensity algebra
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Proposition 1: f∧ is order-independent and matches its closed form.
    #[test]
    fn prop_f_and_order_independent(mut ps in prop::collection::vec(positive_intensity(), 1..7)) {
        let closed = 1.0 - ps.iter().map(|p| 1.0 - p).product::<f64>();
        let forward = f_and_all(ps.iter().copied());
        ps.reverse();
        let backward = f_and_all(ps.iter().copied());
        prop_assert!((forward - closed).abs() < 1e-9);
        prop_assert!((forward - backward).abs() < 1e-9);
    }

    /// f∧ is inflationary and stays in [0, 1] for non-negative operands.
    #[test]
    fn prop_f_and_inflationary(a in qual_strength(), b in qual_strength()) {
        let c = f_and(a, b);
        prop_assert!(c >= a - 1e-12 && c >= b - 1e-12);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
    }

    /// f∨ is reserved: the result lies between its operands.
    #[test]
    fn prop_f_or_reserved(a in intensity_value(), b in intensity_value()) {
        let c = f_or(a, b);
        prop_assert!(c >= a.min(b) - 1e-12 && c <= a.max(b) + 1e-12);
    }

    /// Proposition 2: the descending-order fold dominates other orders.
    #[test]
    fn prop_f_or_order_dependent(mut ps in prop::collection::vec(qual_strength(), 3..3usize.saturating_add(1))) {
        ps.sort_by(|a, b| b.total_cmp(a));
        let (p1, p2, p3) = (ps[0], ps[1], ps[2]);
        let a = f_or(p1, f_or(p2, p3));
        let b = f_or(p2, f_or(p1, p3));
        let c = f_or(p3, f_or(p1, p2));
        prop_assert!(a >= b - 1e-12 && b >= c - 1e-12);
    }

    /// Algorithm 8's axioms hold for both propagation models: the left
    /// result dominates the seed, the right result is dominated by it,
    /// zero strength is the identity, and everything stays in [-1, 1].
    #[test]
    fn prop_propagation_axioms(
        seed in intensity_value(),
        strength in qual_strength(),
    ) {
        for model in [IntensityModel::Exponential, IntensityModel::Linear] {
            let qt = Intensity::new(seed).unwrap();
            let ql = QualIntensity::new(strength).unwrap();
            let left = model.propagate(Position::Left, ql, qt).value();
            let right = model.propagate(Position::Right, ql, qt).value();
            prop_assert!(left >= seed - 1e-12, "{model:?} left {left} seed {seed}");
            prop_assert!(right <= seed + 1e-12, "{model:?} right {right} seed {seed}");
            prop_assert!((-1.0..=1.0).contains(&left));
            prop_assert!((-1.0..=1.0).contains(&right));
            if strength == 0.0 {
                prop_assert!((left - seed).abs() < 1e-12);
                prop_assert!((right - seed).abs() < 1e-12);
            }
        }
    }

    /// Default-value strategies always seed inside [-1, 1].
    #[test]
    fn prop_default_seeds_in_range(values in prop::collection::vec(intensity_value(), 0..20)) {
        for strategy in DefaultValueStrategy::table12() {
            let v = strategy.seed(&values).value();
            prop_assert!((-1.0..=1.0).contains(&v), "{strategy:?} gave {v}");
        }
    }
}

// ---------------------------------------------------------------------
// graph invariants under random streams
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any interleaving of preference insertions keeps the two structural
    /// invariants: acyclic PREFERS subgraph and left ≥ right on every
    /// PREFERS edge.
    #[test]
    fn prop_graph_invariants_under_random_streams(
        events in prop::collection::vec(event(), 1..40)
    ) {
        let mut graph = HypreGraph::new();
        let user = UserId(1);
        for e in events {
            match e {
                Event::Quant(p, v) => {
                    graph.add_quantitative(&QuantitativePref::new(
                        user, p, Intensity::new(v).unwrap(),
                    ));
                }
                Event::Qual(l, r, s) => {
                    if l.canonical() != r.canonical() {
                        let pref = QualitativePref::new(
                            user, l, r, QualIntensity::new(s).unwrap(),
                        ).unwrap();
                        graph.add_qualitative(&pref).unwrap();
                    }
                }
            }
            if let Err(msg) = graph.check_invariants() {
                prop_assert!(false, "invariant violated: {msg}");
            }
        }
    }

    /// Reloading the same stream gives identical profiles (determinism).
    #[test]
    fn prop_graph_build_is_deterministic(
        events in prop::collection::vec(event(), 1..25)
    ) {
        let build = || {
            let mut g = HypreGraph::new();
            for e in &events {
                match e {
                    Event::Quant(p, v) => {
                        g.add_quantitative(&QuantitativePref::new(
                            UserId(1), p.clone(), Intensity::new(*v).unwrap(),
                        ));
                    }
                    Event::Qual(l, r, s) => {
                        if l.canonical() != r.canonical() {
                            g.add_qualitative(&QualitativePref::new(
                                UserId(1), l.clone(), r.clone(),
                                QualIntensity::new(*s).unwrap(),
                            ).unwrap()).unwrap();
                        }
                    }
                }
            }
            g.profile(UserId(1))
                .into_iter()
                .map(|p| (p.predicate.canonical(), p.intensity))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(build(), build());
    }
}

// ---------------------------------------------------------------------
// PEPS vs brute force on random micro-workloads
// ---------------------------------------------------------------------

fn micro_db(venues: &[u8], authors: &[(u8, u8)]) -> Database {
    let mut db = Database::new();
    let papers = db
        .create_table(
            "dblp",
            Schema::of(&[
                ("pid", DataType::Int),
                ("venue", DataType::Str),
                ("year", DataType::Int),
            ]),
        )
        .unwrap();
    for (i, v) in venues.iter().enumerate() {
        papers
            .insert(vec![
                (i as i64 + 1).into(),
                format!("V{v}").into(),
                (1990 + (i as i64 % 22)).into(),
            ])
            .unwrap();
    }
    let link = db
        .create_table(
            "dblp_author",
            Schema::of(&[("pid", DataType::Int), ("aid", DataType::Int)]),
        )
        .unwrap();
    for &(p, a) in authors {
        let pid = (p as usize % venues.len().max(1)) as i64 + 1;
        link.insert(vec![pid.into(), (a as i64).into()]).unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Complete PEPS reproduces the brute-force f∧ ranking exactly on any
    /// random micro-workload.
    #[test]
    fn prop_peps_matches_bruteforce(
        venues in prop::collection::vec(0u8..5, 3..12),
        authors in prop::collection::vec((0u8..12, 0u8..8), 1..20),
        prefs in prop::collection::vec((atom_predicate(), positive_intensity()), 1..6),
    ) {
        let db = micro_db(&venues, &authors);
        let exec = Executor::new(&db, BaseQuery::dblp());
        let mut atoms: Vec<PrefAtom> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for (p, v) in prefs {
            if seen.insert(p.canonical()) {
                atoms.push(PrefAtom::new(atoms.len(), p, v));
            }
        }
        atoms.sort_by(|a, b| b.intensity.total_cmp(&a.intensity));
        for (i, a) in atoms.iter_mut().enumerate() { a.index = i; }

        let pairs = PairwiseCache::build(&atoms, &exec).unwrap();
        let peps = Peps::new(&atoms, &exec, &pairs, PepsVariant::Complete);
        let got = peps.top_k(1000).unwrap();
        let want = score_tuples(&exec, &atoms).unwrap();
        prop_assert_eq!(got.len(), want.len());
        for ((gt, gg), (wt, wg)) in got.iter().zip(want.iter()) {
            prop_assert_eq!(gt, wt);
            prop_assert!((gg - wg).abs() < 1e-9, "{} vs {}", gg, wg);
        }
    }
}

// ---------------------------------------------------------------------
// TA vs brute force on random graded lists
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn prop_ta_matches_bruteforce(
        list_a in prop::collection::vec((0u64..30, qual_strength()), 1..25),
        list_b in prop::collection::vec((0u64..30, qual_strength()), 1..25),
        k in 1usize..10,
    ) {
        let lists = vec![GradedList::new(list_a), GradedList::new(list_b)];
        let agg = |g: &[f64]| f_and_all(g.iter().copied());
        let got = threshold_algorithm(&lists, k, agg);
        // brute force
        let mut all: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for l in &lists {
            all.extend(l.iter().map(|(t, _)| *t));
        }
        let mut want: Vec<(u64, f64)> = all
            .into_iter()
            .map(|t| (t, agg(&[lists[0].grade(&t), lists[1].grade(&t)])))
            .collect();
        want.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        want.truncate(k);
        prop_assert_eq!(got.len(), want.len());
        for ((gt, gg), (wt, wg)) in got.iter().zip(want.iter()) {
            prop_assert_eq!(gt, wt);
            prop_assert!((gg - wg).abs() < 1e-12);
        }
    }
}

// ---------------------------------------------------------------------
// parser round-trip
// ---------------------------------------------------------------------

fn rt_predicate(depth: u32) -> BoxedStrategy<Predicate> {
    let leaf = prop_oneof![
        (0u8..5).prop_map(|v| parse_predicate(&format!("dblp.venue='V{v}'")).unwrap()),
        (0i64..100).prop_map(|a| parse_predicate(&format!("dblp_author.aid={a}")).unwrap()),
        (1990i64..2012, 0i64..5)
            .prop_map(|(lo, d)| { Predicate::between(ColRef::parse("dblp.year"), lo, lo + d) }),
        prop::collection::vec(0u8..5, 1..4).prop_map(|vs| {
            Predicate::in_list(
                ColRef::parse("dblp.venue"),
                vs.into_iter().map(|v| format!("V{v}")).collect::<Vec<_>>(),
            )
        }),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(Predicate::not),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Display → parse is the identity on the AST.
    #[test]
    fn prop_parser_roundtrip(p in rt_predicate(3)) {
        let text = p.to_string();
        let reparsed = parse_predicate(&text).unwrap();
        prop_assert_eq!(&p, &reparsed, "text: {}", text);
        // canonicalisation is stable
        prop_assert_eq!(p.canonical(), reparsed.canonical());
    }
}

// ---------------------------------------------------------------------
// preference-DSL round-trip and error hygiene
// ---------------------------------------------------------------------

/// A random DSL atom. Predicates come from [`rt_predicate`] — fully
/// qualified column references only, because the parser qualifies bare
/// columns against the `OVER` table and a bare-column AST would not
/// round-trip structurally. Derived names include embedded quotes to
/// exercise the `''` escaping.
fn dsl_atom() -> impl Strategy<Value = AtomAst> {
    let kind = prop_oneof![
        rt_predicate(2).prop_map(AtomKind::Predicate),
        (0u8..4).prop_map(|i| {
            let names = ["Jim Gray", "Grace O'Brien", "A. N. Author", "D'Arcy d'If"];
            AtomKind::CoauthorOf(names[i as usize].to_string())
        }),
        (0u8..3).prop_map(|i| {
            let venues = ["SIGMOD", "VLDB '05", "J. o' Irrepr. Results"];
            AtomKind::SameVenueAs(venues[i as usize].to_string())
        }),
    ];
    let intensity = prop_oneof![
        Just(None),
        intensity_value().prop_map(Some),
        Just(Some(1.0)),
        Just(Some(-1.0)),
    ];
    (kind, intensity).prop_map(|(kind, intensity)| AtomAst {
        kind,
        intensity,
        pos: Pos::start(),
    })
}

/// A random composition expression over DSL atoms.
fn dsl_expr(depth: u32) -> BoxedStrategy<PrefExpr> {
    dsl_atom()
        .prop_map(PrefExpr::Atom)
        .prop_recursive(depth, 16, 2, |inner| {
            prop_oneof![
                (qual_strength(), inner.clone(), inner.clone()).prop_map(|(s, l, r)| {
                    PrefExpr::Prior {
                        strength: s,
                        left: Box::new(l),
                        right: Box::new(r),
                        pos: Pos::start(),
                    }
                }),
                (inner.clone(), inner).prop_map(|(l, r)| PrefExpr::Pareto {
                    left: Box::new(l),
                    right: Box::new(r),
                }),
            ]
        })
}

/// A random profile AST.
fn dsl_profile() -> impl Strategy<Value = ProfileAst> {
    (0u8..3, prop::collection::vec(dsl_expr(2), 1..6)).prop_map(|(n, statements)| ProfileAst {
        name: ["p", "rich_user", "q2"][n as usize].to_string(),
        table: "dblp".to_string(),
        statements,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// parse → Display → parse is the identity on random profile ASTs:
    /// intensities and strengths re-parse bit-identically, derived-name
    /// quoting is lossless, and composition parenthesisation is
    /// unambiguous at any nesting.
    #[test]
    fn prop_dsl_roundtrip(ast in dsl_profile()) {
        let printed = ast.to_string();
        let reparsed = match parse_profile(&printed) {
            Ok(p) => p,
            Err(e) => {
                prop_assert!(false, "pretty-printed source failed to parse: {e}\n{printed}");
                unreachable!()
            }
        };
        prop_assert_eq!(&ast, &reparsed, "round-trip changed the AST:\n{}", printed);
        // And printing is a fixpoint: the second print matches the first.
        prop_assert_eq!(printed, reparsed.to_string());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Mutilated profile sources never panic the parser: every outcome is
    /// `Ok` or a typed [`DslError`] whose position lies inside the input
    /// (1-based line within the source's line count, column ≥ 1) and
    /// whose `Display` renders.
    #[test]
    fn prop_dsl_malformed_inputs_yield_typed_errors(
        ast in dsl_profile(),
        kind in 0u8..4,
        at in 0.0f64..1.0,
        garbage in 0u8..12,
    ) {
        let src = ast.to_string();
        let chars: Vec<char> = src.chars().collect();
        let idx = ((chars.len() as f64) * at) as usize;
        let junk = [
            "@", "@ 2.0", "PRIOR", "PARETO", "(", ")", "'", "\"",
            "0.5.5", "&", "!", "\u{3b1}\u{3b2}",
        ][garbage as usize];
        let mutated: String = match kind {
            // truncate
            0 => chars[..idx].iter().collect(),
            // insert a junk token
            1 => {
                let mut s: String = chars[..idx].iter().collect();
                s.push_str(junk);
                s.extend(&chars[idx..]);
                s
            }
            // replace one character
            2 if !chars.is_empty() => {
                let i = idx.min(chars.len() - 1);
                let mut s: String = chars[..i].iter().collect();
                s.push_str(junk);
                s.extend(&chars[i + 1..]);
                s
            }
            // delete one character
            _ if !chars.is_empty() => {
                let i = idx.min(chars.len() - 1);
                let mut s: String = chars[..i].iter().collect();
                s.extend(&chars[i + 1..]);
                s
            }
            _ => String::new(),
        };
        match parse_profile(&mutated) {
            Ok(_) => {} // the mutation happened to stay well-formed
            Err(e) => {
                // A source ending in '\n' reports EOF errors on the line
                // *after* the last textual one, hence the +1.
                let lines = mutated.lines().count().max(1) as u32 + 1;
                prop_assert!(e.pos.line >= 1, "line 0 in: {e}");
                prop_assert!(
                    e.pos.line <= lines,
                    "error line {} beyond the {}-line input: {e}",
                    e.pos.line,
                    lines
                );
                prop_assert!(e.pos.column >= 1, "column 0 in: {e}");
                let rendered = e.to_string();
                prop_assert!(
                    rendered.starts_with(&format!("line {}, column {}", e.pos.line, e.pos.column)),
                    "Display lost the position: {rendered}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// skyline dominance
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every skyline member is non-dominated and every non-member is
    /// dominated (checked against the brute-force oracle).
    #[test]
    fn prop_skyline_is_exact(rows in prop::collection::vec((0i64..50, 0i64..50), 1..30)) {
        let mut db = Database::new();
        let t = db
            .create_table(
                "items",
                Schema::of(&[("id", DataType::Int), ("x", DataType::Int), ("y", DataType::Int)]),
            )
            .unwrap();
        for (i, (x, y)) in rows.iter().enumerate() {
            t.insert(vec![(i as i64).into(), (*x).into(), (*y).into()]).unwrap();
        }
        let prefs = vec![
            AttributePref::min(ColRef::parse("x")),
            AttributePref::min(ColRef::parse("y")),
        ];
        let sky = skyline(&db, "items", &prefs).unwrap();
        for row in 0..rows.len() {
            let member = sky.contains(&row);
            let oracle = hypre_repro::core::skyline::is_skyline_member(&db, "items", &prefs, row).unwrap();
            prop_assert_eq!(member, oracle, "row {}", row);
        }
        // sanity: the global minimum on x is always present
        let min_x = rows.iter().enumerate().min_by_key(|(i, (x, _))| (*x, *i)).unwrap();
        let min_x_dominated = rows.iter().enumerate().any(|(j, (x, y))| {
            j != min_x.0 && (*x, *y) != (min_x.1.0, min_x.1.1)
                && *x <= min_x.1.0 && *y <= min_x.1.1
                && (*x < min_x.1.0 || *y < min_x.1.1)
        });
        if !min_x_dominated {
            prop_assert!(sky.contains(&min_x.0));
        }
    }
}

// ---------------------------------------------------------------------
// value ordering laws (relstore)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// relstore's Value total order is antisymmetric and transitive over a
    /// random sample, and Eq implies identical sort position behaviour.
    #[test]
    fn prop_value_total_order(ints in prop::collection::vec(-100i64..100, 3..10)) {
        let mut values: Vec<Value> = Vec::new();
        for (i, v) in ints.iter().enumerate() {
            values.push(Value::Int(*v));
            if i % 2 == 0 {
                values.push(Value::Float(*v as f64 / 2.0));
            }
            if i % 3 == 0 {
                values.push(Value::str(format!("s{v}")));
            }
        }
        values.push(Value::Null);
        let mut sorted = values.clone();
        sorted.sort();
        // sorting is idempotent and Null leads
        let mut again = sorted.clone();
        again.sort();
        prop_assert_eq!(&sorted, &again);
        prop_assert_eq!(&sorted[0], &Value::Null);
    }
}
