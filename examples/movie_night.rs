//! A qualitative-heavy profile: conflicting opinions, cycles, equal
//! preference, and a negative preference — exercising the HYPRE graph's
//! conflict machinery (§6.2.3) end to end.
//!
//! ```text
//! cargo run --example movie_night
//! ```

use hypre_repro::prelude::*;
use hypre_repro::relstore::parse_predicate;

fn main() -> Result<()> {
    let me = UserId(42);
    let mut graph = HypreGraph::new();

    // A couple of scored opinions.
    graph.add_quantitative(&QuantitativePref::new(
        me,
        parse_predicate("movie.genre='comedy'")?,
        Intensity::new(0.8)?,
    ));
    graph.add_quantitative(&QuantitativePref::new(
        me,
        parse_predicate("movie.genre='horror'")?,
        Intensity::new(-0.6)?, // a negative preference: easy here,
                               // impossible in a purely qualitative model
    ));

    // Comparative opinions. Each inserts an edge; endpoints without scores
    // get them computed via Eq. 4.1/4.2.
    let outcomes = [
        // comedies over dramas, strongly
        graph.add_qualitative(&QualitativePref::new(
            me,
            parse_predicate("movie.genre='comedy'")?,
            parse_predicate("movie.genre='drama'")?,
            QualIntensity::new(0.7)?,
        )?)?,
        // dramas over thrillers, mildly
        graph.add_qualitative(&QualitativePref::new(
            me,
            parse_predicate("movie.genre='drama'")?,
            parse_predicate("movie.genre='thriller'")?,
            QualIntensity::new(0.2)?,
        )?)?,
        // thrillers and sci-fi equally preferred (strength 0)
        graph.add_qualitative(&QualitativePref::new(
            me,
            parse_predicate("movie.genre='thriller'")?,
            parse_predicate("movie.genre='scifi'")?,
            QualIntensity::ZERO,
        )?)?,
        // ... and a contradictory afterthought: thrillers over comedies?!
        // This closes a cycle and is stored as an inert CYCLE edge.
        graph.add_qualitative(&QualitativePref::new(
            me,
            parse_predicate("movie.genre='thriller'")?,
            parse_predicate("movie.genre='comedy'")?,
            QualIntensity::new(0.4)?,
        )?)?,
    ];

    for (i, out) in outcomes.iter().enumerate() {
        println!(
            "qualitative preference {}: stored as {:?} edge{}",
            i + 1,
            out.kind,
            if out.recomputed.is_empty() {
                String::new()
            } else {
                format!(" ({} intensity value(s) computed)", out.recomputed.len())
            }
        );
    }
    graph
        .check_invariants()
        .expect("PREFERS subgraph stays a DAG");

    println!("\nfinal profile (note: every genre now has a usable score):");
    for pref in graph.profile(me) {
        println!(
            "  {:<26} {:+.3}  [{}]",
            pref.predicate.to_string(),
            pref.intensity.unwrap_or(f64::NAN),
            match pref.provenance {
                Some(Provenance::UserProvided) => "user",
                Some(Provenance::SystemComputed) => "computed",
                Some(Provenance::DefaultSeed) => "default seed",
                None => "unscored",
            }
        );
    }

    let counts = graph.edge_kind_counts(me);
    println!(
        "\nedges: {} PREFERS, {} CYCLE, {} DISCARD",
        counts.get(&EdgeKind::Prefers).unwrap_or(&0),
        counts.get(&EdgeKind::Cycle).unwrap_or(&0),
        counts.get(&EdgeKind::Discard).unwrap_or(&0),
    );
    let (user_given, total_scored) = graph.quantitative_counts(me);
    println!(
        "coverage growth: {user_given} user-scored predicates grew to {total_scored} \
         (the Figs. 26–27 effect)"
    );
    Ok(())
}
