//! The dealership walkthrough of Examples 5–6 (§2.5 and §4.6.1): three
//! preferences with different strengths, per-tuple combined intensities
//! (Table 9), and the ranking Preference SQL gets wrong.
//!
//! Expected output: t1 (0.92) ≻ t2 (0.90) ≻ t3 (0.60) — the dissertation
//! points out Preference SQL returns t1, t3, t2 because it cannot weight
//! the mileage preference above the make preference.
//!
//! ```text
//! cargo run --example car_dealership
//! ```

use hypre_repro::prelude::*;
use hypre_repro::relstore::{parse_predicate, ColRef, DataType, Database, Schema};

fn main() -> Result<()> {
    // Table 8: the dealership relation.
    let mut db = Database::new();
    let cars = db
        .create_table(
            "cars",
            Schema::of(&[
                ("id", DataType::Int),
                ("price", DataType::Int),
                ("mileage", DataType::Int),
                ("make", DataType::Str),
            ]),
        )
        .expect("fresh database");
    for (id, price, mileage, make) in [
        (1, 7_000, 43_489, "Honda"),
        (2, 16_000, 35_334, "VW"),
        (3, 20_000, 49_119, "Honda"),
    ] {
        cars.insert(vec![id.into(), price.into(), mileage.into(), make.into()])
            .expect("row matches schema");
    }

    // Example 6's preferences, with their intensities.
    let buyer = UserId(7);
    let mut graph = HypreGraph::new();
    for (pred, intensity, text) in [
        (
            "cars.price BETWEEN 7000 AND 16000",
            0.8,
            "P1: price between $7,000 and $16,000 (intensity 0.8)",
        ),
        (
            "cars.mileage BETWEEN 20000 AND 50000",
            0.5,
            "P2: mileage between 20,000 and 50,000 (intensity 0.5)",
        ),
        (
            "cars.make IN ('BMW','Honda')",
            0.2,
            "P3: a BMW or a Honda (intensity 0.2)",
        ),
    ] {
        println!("{text}");
        graph.add_quantitative(&QuantitativePref::new(
            buyer,
            parse_predicate(pred)?,
            Intensity::new(intensity)?,
        ));
    }

    // Table 9: combined intensity per tuple.
    let exec = Executor::new(&db, BaseQuery::single("cars", ColRef::parse("cars.id")));
    let atoms = graph.positive_profile(buyer);
    println!("\ncombined intensities (Table 9):");
    let ranked = score_tuples(&exec, &atoms)?;
    for (id, score) in &ranked {
        let matched: Vec<String> = atoms
            .iter()
            .filter(|a| {
                exec.tuples(&a.predicate)
                    .map(|ts| ts.contains(id))
                    .unwrap_or(false)
            })
            .map(|a| format!("P{}", a.index + 1))
            .collect();
        println!("  t{id}: {score:.2}  (matches {})", matched.join(", "));
    }

    assert_eq!(ranked[0].0.as_i64(), Some(1), "t1 first");
    assert_eq!(ranked[1].0.as_i64(), Some(2), "t2 second — not t3!");
    assert_eq!(ranked[2].0.as_i64(), Some(3), "t3 last");
    println!("\nranking: t1 ≻ t2 ≻ t3 — the order Preference SQL cannot produce");
    Ok(())
}
