//! End-to-end DBLP personalization, the dissertation's headline scenario:
//! generate a citation network, extract preferences from it (§6.2), build
//! the HYPRE graph, and answer "show me papers" with a personalised Top-10
//! via PEPS — comparing against Fagin's TA on the quantitative-only view.
//!
//! ```text
//! cargo run --release --example dblp_personalization
//! ```

use hypre_repro::dblp::{extract, gen, load};
use hypre_repro::prelude::*;
use hypre_repro::relstore::Value;
use hypre_repro::topk::{threshold_algorithm, GradedList};

fn main() -> Result<()> {
    // 1. A seeded synthetic DBLP corpus and its extracted preferences.
    let dataset = gen::generate(&gen::GeneratorConfig {
        papers: 1500,
        authors: 600,
        venues: 30,
        ..gen::GeneratorConfig::default()
    });
    let workload = extract::extract(&dataset, &extract::ExtractionConfig::default());
    let db = load::load(&dataset).expect("schema is valid");
    println!(
        "corpus: {} papers, {} authors; extracted {} quantitative + {} qualitative preferences",
        dataset.papers.len(),
        dataset.authors.len(),
        workload.quantitative.len(),
        workload.qualitative.len()
    );

    // 2. Ingest everything into one HYPRE graph (all user profiles).
    let mut graph = HypreGraph::new();
    let report = graph.load(&workload.quantitative, &workload.qualitative)?;
    println!(
        "graph: {} nodes, {} edges ({} cycles, {} discards) in {:.0} ms + {:.0} ms",
        graph.node_count(),
        graph.edge_count(),
        report.cycle_edges,
        report.discard_edges,
        report.quantitative_time.as_secs_f64() * 1e3,
        report.qualitative_time.as_secs_f64() * 1e3,
    );

    // 3. Pick the user with the richest profile as "the researcher".
    let user = graph
        .users()
        .into_iter()
        .max_by_key(|u| graph.positive_profile(*u).len())
        .expect("graph has users");
    let atoms = graph.positive_profile(user);
    println!("\nresearcher {user}: {} positive preferences", atoms.len());

    // 4. PEPS Top-10 over the hybrid profile.
    let exec = Executor::new(&db, BaseQuery::dblp());
    let pairs = PairwiseCache::build(&atoms, &exec)?;
    let peps = Peps::new(&atoms, &exec, &pairs, PepsVariant::Complete);
    let top = peps.top_k(10)?;
    println!("\nPEPS top-10 (hybrid profile):");
    print_papers(&dataset, &top);

    // 5. TA over the quantitative-only preferences (what a system without
    //    HYPRE's conversion would see).
    let qt_atoms: Vec<PrefAtom> = workload
        .quantitative
        .iter()
        .filter(|p| p.user == user && p.intensity.value() > 0.0)
        .enumerate()
        .map(|(i, p)| PrefAtom::new(i, p.predicate.clone(), p.intensity.value()))
        .collect();
    // One graded list per attribute, composite f∧ grades within a list.
    let mut venue_pairs: Vec<(Value, f64)> = Vec::new();
    let mut author_pairs: Vec<(Value, f64)> = Vec::new();
    for atom in &qt_atoms {
        let is_venue = atom.predicate.to_string().contains("venue");
        for t in exec.tuples(&atom.predicate)? {
            let bucket = if is_venue {
                &mut venue_pairs
            } else {
                &mut author_pairs
            };
            bucket.push((t, atom.intensity));
        }
    }
    let compose = |pairs: Vec<(Value, f64)>| {
        let mut residual: std::collections::HashMap<Value, f64> = std::collections::HashMap::new();
        for (t, g) in pairs {
            *residual.entry(t).or_insert(1.0) *= 1.0 - g;
        }
        GradedList::new(residual.into_iter().map(|(t, r)| (t, 1.0 - r)))
    };
    let lists = vec![compose(venue_pairs), compose(author_pairs)];
    let ta = threshold_algorithm(&lists, 10, |g| f_and_all(g.iter().copied()));
    println!("\nTA top-10 (quantitative-only view):");
    print_papers(&dataset, &ta);

    let peps_ids: Vec<Value> = top.iter().map(|(t, _)| t.clone()).collect();
    let ta_ids: Vec<Value> = ta.iter().map(|(t, _)| t.clone()).collect();
    println!(
        "\nlist similarity: {:.0}% — PEPS sees the converted qualitative \
         preferences TA cannot",
        similarity(&peps_ids, &ta_ids) * 100.0
    );
    Ok(())
}

fn print_papers(dataset: &hypre_repro::dblp::DblpDataset, ranked: &[(Value, f64)]) {
    for (pid, score) in ranked {
        if let Some(paper) = dataset
            .papers
            .iter()
            .find(|p| Value::Int(p.pid as i64).sql_eq(pid))
        {
            println!(
                "  {score:.3}  [{:<8}] ({}) {}",
                paper.venue, paper.year, paper.title
            );
        }
    }
}
