//! The attribute-based preference extension (§1.4/§8.2): "I want the
//! cheapest hotel that is close to the beach" as a skyline query, plus the
//! prioritised refinement "price is more important than distance".
//!
//! ```text
//! cargo run --example skyline_hotels
//! ```

use hypre_repro::prelude::*;
use hypre_repro::relstore::{ColRef, DataType, Database, Schema};

fn main() -> Result<()> {
    let mut db = Database::new();
    let hotels = db
        .create_table(
            "hotels",
            Schema::of(&[
                ("id", DataType::Int),
                ("name", DataType::Str),
                ("price", DataType::Int),
                ("distance", DataType::Int),
            ]),
        )
        .expect("fresh database");
    let rows: &[(i64, &str, i64, i64)] = &[
        (1, "Budget Inn", 45, 1200),
        (2, "Seaside Grand", 220, 50),
        (3, "Promenade", 110, 180),
        (4, "Old Harbour", 80, 420),
        (5, "Backstreet Stay", 95, 800), // dominated by Old Harbour
        (6, "Dune Lodge", 150, 90),
        (7, "City Central", 60, 1500), // dominated by Budget Inn
    ];
    for &(id, name, price, distance) in rows {
        hotels
            .insert(vec![id.into(), name.into(), price.into(), distance.into()])
            .expect("row matches schema");
    }

    // ⟨price, min⟩ and ⟨distance, min⟩ — two attribute-based preferences.
    let prefs = vec![
        AttributePref::min(ColRef::parse("price")),
        AttributePref::min(ColRef::parse("distance")),
    ];

    let sky = skyline(&db, "hotels", &prefs)?;
    println!("skyline (no hotel is cheaper AND closer):");
    for rid in &sky {
        let (_, row) = db
            .table("hotels")
            .unwrap()
            .scan()
            .nth(*rid)
            .expect("skyline rows exist");
        println!("  {:<16} ${:<4} {}m from the beach", row[1], row[2], row[3]);
    }
    assert!(!sky.contains(&4), "Backstreet Stay is dominated");
    assert!(!sky.contains(&6), "City Central is dominated");

    // A qualitative order over the attributes ranks the skyline.
    println!("\nprice more important than distance:");
    for rid in prioritized_skyline(&db, "hotels", &prefs)? {
        let (_, row) = db.table("hotels").unwrap().scan().nth(rid).unwrap();
        println!("  {:<16} ${}", row[1], row[2]);
    }

    let flipped = vec![
        AttributePref::min(ColRef::parse("distance")),
        AttributePref::min(ColRef::parse("price")),
    ];
    println!("\ndistance more important than price:");
    for rid in prioritized_skyline(&db, "hotels", &flipped)? {
        let (_, row) = db.table("hotels").unwrap().scan().nth(rid).unwrap();
        println!("  {:<16} {}m", row[1], row[3]);
    }
    Ok(())
}
