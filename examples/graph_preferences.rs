//! The graph-derived workload family, end to end: load a DBLP corpus into
//! the property graph, materialise co-author and venue co-occurrence
//! edges, lower them into a preference-DSL catalog, and answer a DSL
//! profile naming `COAUTHOR_OF` / `SAME_VENUE_AS` atoms with a PEPS
//! Top-10 over the relational corpus.
//!
//! ```text
//! cargo run --release --example graph_preferences
//! ```

use hypre_repro::dblp::{gen, graph::PaperGraph, load};
use hypre_repro::prelude::*;
use hypre_repro::relstore::Value;

fn sql_escape(s: &str) -> String {
    s.replace('\'', "''")
}

fn main() -> Result<()> {
    // 1. Corpus, relational load, property-graph load.
    let dataset = gen::generate(&gen::GeneratorConfig {
        papers: 1200,
        authors: 400,
        venues: 25,
        ..gen::GeneratorConfig::default()
    });
    let db = load::load(&dataset).expect("schema is valid");
    let mut pg = PaperGraph::build(&dataset).expect("corpus loads into the graph");
    println!(
        "graph: {} nodes, {} edges from {} papers / {} authors",
        pg.graph.node_count(),
        pg.graph.edge_count(),
        dataset.papers.len(),
        dataset.authors.len()
    );

    // 2. Materialise co-occurrence edges (deterministic at any width).
    let (coauthor, co_venue) = pg.derive_preference_edges(4).expect("derivation succeeds");
    println!(
        "derived: {} co-author pairs over {} papers, {} venue pairs over {} authors",
        coauthor.pairs, coauthor.hubs, co_venue.pairs, co_venue.hubs
    );

    // 3. Lower the derived neighbourhoods into a DSL catalog and pick a
    //    well-connected author and venue to personalise around.
    let catalog = pg.derived_catalog(&dataset);
    let author = dataset
        .authors
        .iter()
        .max_by_key(|a| pg.coauthor_aids(a.aid).len())
        .expect("corpus has authors");
    let venue = dataset
        .venues()
        .into_iter()
        .map(String::from)
        .max_by_key(|v| pg.co_venues(v).len())
        .expect("corpus has venues");
    println!(
        "researcher: '{}' ({} co-authors); home venue: '{}' ({} co-venues)",
        author.full_name,
        pg.coauthor_aids(author.aid).len(),
        venue,
        pg.co_venues(&venue).len()
    );

    // 4. A profile in the DSL, naming graph-derived atoms alongside a
    //    plain predicate, with a PRIOR edge between them.
    let source = format!(
        "PROFILE researcher OVER dblp {{
            COAUTHOR_OF('{}') @ 0.8;
            SAME_VENUE_AS('{}') @ 0.5;
            COAUTHOR_OF('{}') PRIOR @ 0.6 year < 2005;
        }}",
        sql_escape(&author.full_name),
        sql_escape(&venue),
        sql_escape(&author.full_name),
    );
    let ast = parse_profile(&source)?;

    // Parse → print → parse is the identity on the AST.
    let reparsed = parse_profile(&ast.to_string())?;
    assert_eq!(ast, reparsed, "DSL round-trip must be lossless");
    println!("\nprofile (pretty-printed from the AST):\n{ast}");

    // 5. Compile against the catalog and run PEPS Top-10, exactly the
    //    hand-built pipeline.
    let profile = ast.compile(UserId(7), &catalog)?;
    let atoms = profile.atoms()?;
    println!(
        "compiled: {} quantitative / {} qualitative prefs -> {} positive atoms",
        profile.quantitative().len(),
        profile.qualitative().len(),
        atoms.len()
    );

    let exec = Executor::new(&db, BaseQuery::dblp());
    let pairs = PairwiseCache::build(&atoms, &exec)?;
    let peps = Peps::new(&atoms, &exec, &pairs, PepsVariant::Complete);
    let top = peps.top_k(10)?;
    println!("\nPEPS top-10 (graph-derived profile):");
    for (pid, score) in &top {
        if let Some(paper) = dataset
            .papers
            .iter()
            .find(|p| Value::Int(p.pid as i64).sql_eq(pid))
        {
            println!(
                "  {score:.3}  [{:<8}] ({}) {}",
                paper.venue, paper.year, paper.title
            );
        }
    }
    assert!(!top.is_empty(), "derived atoms must select papers");
    Ok(())
}
