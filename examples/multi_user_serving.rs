//! Multi-user serving over one shared profile snapshot — the production
//! shape the ROADMAP targets: a build phase warms a `ProfileCache` with
//! every stored predicate once, then N concurrent user sessions open
//! cheap executors over the frozen snapshot, shard their pairwise builds
//! across worker threads, and answer personalised Top-10 queries without
//! re-running a single profile SQL query.
//!
//! ```text
//! cargo run --release --example multi_user_serving
//! ```

use std::sync::Arc;
use std::time::Instant;

use hypre_repro::dblp::{extract, gen, load};
use hypre_repro::prelude::*;
use hypre_repro::relstore::Predicate;

fn main() -> Result<()> {
    // 1. Corpus + extracted preferences + HYPRE graph (the build inputs).
    let dataset = gen::generate(&gen::GeneratorConfig {
        papers: 1500,
        authors: 600,
        venues: 30,
        ..gen::GeneratorConfig::default()
    });
    let workload = extract::extract(&dataset, &extract::ExtractionConfig::default());
    let db = load::load(&dataset).expect("schema is valid");
    let mut graph = HypreGraph::new();
    graph.load(&workload.quantitative, &workload.qualitative)?;

    // 2. The four busiest users are "the concurrent traffic".
    let mut users = graph.users();
    users.sort_by_key(|u| std::cmp::Reverse(graph.positive_profile(*u).len()));
    users.truncate(4);
    let profiles: Vec<(UserId, Vec<PrefAtom>)> = users
        .iter()
        .map(|&u| (u, graph.positive_profile(u)))
        .collect();
    println!(
        "serving {} users with profiles of {:?} preferences",
        profiles.len(),
        profiles.iter().map(|(_, a)| a.len()).collect::<Vec<_>>()
    );

    // 3. Cold baseline: every session is a fresh executor — each one
    //    re-interns the corpus and re-runs every profile query. The
    //    sessions run concurrently, exactly like the shared phase below,
    //    so the wall-clock delta is what the snapshot buys and not
    //    thread-level parallelism.
    let cold_start = Instant::now();
    let (cold_results, cold_queries): (Vec<Vec<RankedTuple>>, Vec<usize>) =
        std::thread::scope(|scope| {
            let handles: Vec<_> = profiles
                .iter()
                .map(|(_, atoms)| {
                    let db = &db;
                    scope.spawn(move || {
                        let exec = Executor::new(db, BaseQuery::dblp());
                        let pairs = PairwiseCache::build(atoms, &exec).expect("cold build");
                        let top = Peps::new(atoms, &exec, &pairs, PepsVariant::Complete)
                            .top_k(10)
                            .expect("cold top-k");
                        (top, exec.queries_run())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).unzip()
        });
    let cold_queries: usize = cold_queries.iter().sum();
    let cold_elapsed = cold_start.elapsed();

    // 4. Build phase: warm ONE executor with the union of all stored
    //    predicates, freeze it into a shared snapshot.
    let warm_start = Instant::now();
    let predicates: Vec<&Predicate> = profiles
        .iter()
        .flat_map(|(_, atoms)| atoms.iter().map(|a| &a.predicate))
        .collect();
    let cache = Arc::new(ProfileCache::warm(&db, BaseQuery::dblp(), predicates)?);
    let warm_elapsed = warm_start.elapsed();
    println!(
        "profile cache: {} predicate sets over a {}-tuple universe, \
         warmed in {:.1} ms",
        cache.len(),
        cache.tuple_universe(),
        warm_elapsed.as_secs_f64() * 1e3
    );

    // 5. Serving phase: one concurrent session per user, all reading the
    //    snapshot lock-free; each session shards its own pairwise build.
    let serve_start = Instant::now();
    let served: Vec<(UserId, Vec<RankedTuple>, usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = profiles
            .iter()
            .map(|(user, atoms)| {
                let cache = Arc::clone(&cache);
                let db = &db;
                scope.spawn(move || {
                    let session = Executor::with_cache(db, cache)
                        .expect("cache matches the corpus")
                        .with_parallelism(Parallelism::Auto);
                    let pairs = PairwiseCache::build(atoms, &session).expect("session build");
                    let top = Peps::new(atoms, &session, &pairs, PepsVariant::Complete)
                        .top_k(10)
                        .expect("session top-k");
                    (*user, top, session.queries_run(), session.shared_hits())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let serve_elapsed = serve_start.elapsed();

    // 6. The shared-snapshot sessions must agree exactly with the cold
    //    executors — determinism is the contract that makes the cache a
    //    pure optimisation.
    for ((user, top, queries, shared_hits), cold) in served.iter().zip(&cold_results) {
        assert_eq!(top, cold, "session ranking diverged for {user}");
        assert_eq!(*queries, 0, "session for {user} re-ran SQL");
        println!(
            "  {user}: top-10 served with {shared_hits} cached set fetches, \
             0 SQL queries (best score {:.3})",
            top.first().map_or(0.0, |(_, s)| *s)
        );
    }
    println!(
        "\ncold serving ({} concurrent sessions): {cold_queries} SQL queries, {:.1} ms total",
        profiles.len(),
        cold_elapsed.as_secs_f64() * 1e3
    );
    println!(
        "shared serving: 0 SQL queries, {:.1} ms warm build + {:.1} ms for \
         {} concurrent sessions",
        warm_elapsed.as_secs_f64() * 1e3,
        serve_elapsed.as_secs_f64() * 1e3,
        served.len()
    );
    Ok(())
}
