//! Quickstart: store both kinds of preferences for a user, let HYPRE unify
//! them, and rank a table by combined intensity.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hypre_repro::prelude::*;
use hypre_repro::relstore::{parse_predicate, ColRef, DataType, Database, Schema};

fn main() -> Result<()> {
    // 1. A small movie relation (the dissertation's Table 3).
    let mut db = Database::new();
    let movies = db
        .create_table(
            "movie",
            Schema::of(&[
                ("mid", DataType::Int),
                ("title", DataType::Str),
                ("year", DataType::Int),
                ("genre", DataType::Str),
            ]),
        )
        .expect("fresh database");
    for (mid, title, year, genre) in [
        (1, "Casablanca", 1942, "drama"),
        (2, "Psycho", 1960, "horror"),
        (3, "Schindler's List", 1993, "drama"),
        (4, "White Christmas", 1954, "comedy"),
        (5, "The Adventures of Tintin", 2011, "comedy"),
        (6, "The Girl on the Train", 2013, "thriller"),
    ] {
        movies
            .insert(vec![mid.into(), title.into(), year.into(), genre.into()])
            .expect("row matches schema");
    }

    // 2. A user profile mixing quantitative and qualitative preferences.
    let me = UserId(1);
    let mut graph = HypreGraph::new();

    // "I like comedies very much" — quantitative, score 0.9.
    graph.add_quantitative(&QuantitativePref::new(
        me,
        parse_predicate("movie.genre='comedy'")?,
        Intensity::new(0.9)?,
    ));
    // "I like dramas a bit" — quantitative, score 0.4.
    graph.add_quantitative(&QuantitativePref::new(
        me,
        parse_predicate("movie.genre='drama'")?,
        Intensity::new(0.4)?,
    ));
    // "I prefer recent movies over dramas" — qualitative, strength 0.5.
    // HYPRE converts this into a quantitative preference for the new
    // predicate via Eq. 4.1: the graph gains a scored node.
    graph.add_qualitative(&QualitativePref::new(
        me,
        parse_predicate("movie.year>=2000")?,
        parse_predicate("movie.genre='drama'")?,
        QualIntensity::new(0.5)?,
    )?)?;
    graph.check_invariants().expect("model invariants hold");

    println!("profile for {me} (intensity-descending):");
    for pref in graph.profile(me) {
        println!(
            "  {:<24} intensity {:+.3}",
            pref.predicate.to_string(),
            pref.intensity.unwrap_or(f64::NAN)
        );
    }

    // 3. Enhance the base query and rank tuples by combined intensity.
    let base = BaseQuery::single("movie", ColRef::parse("movie.mid"));
    let enhanced = enhance_query(&base, &graph, me);
    println!("\nenhanced WHERE clause:\n  {}", enhanced.query.predicate());

    let exec = Executor::new(&db, base);
    let atoms = graph.positive_profile(me);
    println!("\nranked movies (f∧-combined intensity):");
    for (mid, score) in score_tuples(&exec, &atoms)? {
        let title = db
            .table("movie")
            .unwrap()
            .scan()
            .find(|(_, row)| row[0].sql_eq(&mid))
            .map(|(_, row)| row[1].to_string())
            .unwrap_or_default();
        println!("  {score:.3}  {title}");
    }
    Ok(())
}
