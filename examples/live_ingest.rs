//! Live corpora without stop-the-world: epoch-versioned snapshots over
//! a growing DBLP corpus. A `ProfileCache` is warmed once on the base
//! corpus and published as epoch 1; user sessions pin the epoch they
//! opened on and serve lock-free; a batch of new papers is ingested as
//! an append-only delta (`ingest_delta` re-scores only the predicates
//! the delta touches — no SQL re-derivation of untouched sets) and
//! published as epoch 2; pinned sessions drain at their next query
//! boundary; and a fault-injection pass shows a failed ingest leaves
//! the previous epoch intact and serving.
//!
//! ```text
//! cargo run --release --example live_ingest
//! ```

use std::time::Instant;

use hypre_bench::ingest::split_corpus;
use hypre_repro::dblp::{extract, gen};
use hypre_repro::prelude::*;
use hypre_repro::relstore::{Database, FailSchedule, FailingDriver, Predicate};

fn main() -> Result<()> {
    // 1. A corpus, split append-only: 90 % is live at warm-up time, the
    //    last 10 % arrives later as streamed inserts.
    let dataset = gen::generate(&gen::GeneratorConfig {
        papers: 2000,
        authors: 800,
        venues: 30,
        ..gen::GeneratorConfig::default()
    });
    let workload = extract::extract(&dataset, &extract::ExtractionConfig::default());
    let split = split_corpus(&dataset, 0.9);
    println!(
        "corpus: {} papers at warm-up, {} papers + {} authorship links arriving live",
        split.base.table("dblp").expect("dblp exists").len(),
        split.delta_papers,
        split.delta_links,
    );

    // 2. The busiest user's profile drives the serving traffic.
    let mut graph = HypreGraph::new();
    graph.load(&workload.quantitative, &workload.qualitative)?;
    let mut users = graph.users();
    users.sort_by_key(|u| std::cmp::Reverse(graph.positive_profile(*u).len()));
    let user = users[0];
    let atoms = graph.positive_profile(user);
    let predicates: Vec<&Predicate> = atoms.iter().map(|a| &a.predicate).collect();

    // 3. Warm once on the base corpus, publish as epoch 1.
    let warm_start = Instant::now();
    let cache = ProfileCache::warm(&split.base, BaseQuery::dblp(), predicates)?;
    println!(
        "epoch 1: {} predicate sets over a {}-tuple universe, warmed in {:.1} ms",
        cache.len(),
        cache.tuple_universe(),
        warm_start.elapsed().as_secs_f64() * 1e3
    );
    let epochs = EpochCache::new(cache);

    // 4. A session pins epoch 1 and serves — zero SQL.
    let serve = |session: &EpochSession, db: &Database| -> Result<Vec<RankedTuple>> {
        let exec = session.executor(db)?;
        let pairs = PairwiseCache::build(&atoms, &exec)?;
        let top = Peps::new(&atoms, &exec, &pairs, PepsVariant::Complete).top_k(10)?;
        assert_eq!(exec.queries_run(), 0, "epoch sessions never re-run SQL");
        Ok(top)
    };
    let mut session = EpochSession::open(&epochs);
    let before = serve(&session, &split.base)?;
    println!(
        "session pinned to epoch {}: top paper {:?} (score {:.3})",
        session.epoch(),
        before[0].0,
        before[0].1
    );

    // 5. The delta goes live. First, failure-atomicity: an ingest whose
    //    3rd query op faults publishes nothing — epoch 1 keeps serving.
    let driver = FailingDriver::new(split.full.clone(), FailSchedule::nth(3));
    match epochs.ingest(driver.database(), 0) {
        Err(e) => println!("faulted ingest (no retry): {e}"),
        Ok(_) => unreachable!("the scheduled fault must fire"),
    }
    assert_eq!(
        epochs.current_epoch(),
        1,
        "failed ingest left epoch 1 current"
    );
    assert_eq!(serve(&session, &split.base)?, before);
    println!(
        "epoch {} still serving after the fault ({} op started, {} injected)",
        epochs.current_epoch(),
        driver.schedule().ops_started(),
        driver.schedule().injected(),
    );

    // 6. The same ingest with a one-retry budget rides over the fault:
    //    the delta is appended to the touched sets in place (new tuple
    //    ids intern above the frozen id space) and epoch 2 is published.
    let ingest_start = Instant::now();
    let driver = FailingDriver::new(split.full.clone(), FailSchedule::nth(3));
    let report = epochs.ingest(driver.database(), 1)?;
    println!(
        "epoch 2: ingested {} new tuples, re-scored {} of {} predicates in {:.1} ms \
         (1 fault retried)",
        report.new_tuples,
        report.changed.len(),
        epochs.current().cache().len(),
        ingest_start.elapsed().as_secs_f64() * 1e3,
    );

    // 7. The pinned session still answers epoch-1 results until it
    //    drains at its own boundary — no stop-the-world anywhere.
    assert_eq!(session.epoch(), 1);
    assert_eq!(serve(&session, &split.full)?, before);
    let drained = session.drain(&epochs);
    assert!(drained, "a newer epoch was published");
    let after = serve(&session, &split.full)?;
    println!(
        "session drained onto epoch {}: top paper {:?} (score {:.3})",
        session.epoch(),
        after[0].0,
        after[0].1
    );

    // 8. The drained answers are byte-identical to a cold executor over
    //    the full corpus — the epoch path is a pure optimisation.
    let fresh = Executor::new(&split.full, BaseQuery::dblp());
    let fresh_pairs = PairwiseCache::build(&atoms, &fresh)?;
    let want = Peps::new(&atoms, &fresh, &fresh_pairs, PepsVariant::Complete).top_k(10)?;
    assert_eq!(after, want, "epoch+delta must equal a cold full re-warm");
    println!(
        "verified: epoch 2 == cold executor over the full corpus; \
         {} retired epoch(s) held, {} evicted",
        epochs.retired_count(),
        epochs.evicted_count(),
    );
    Ok(())
}
