//! The HYPRE engine behind a socket: a thread-per-core TCP server
//! batching concurrent Top-K sessions over one epoch-versioned
//! `ProfileCache`. A scripted client pings, pipelines preference
//! queries for two tenants (answers verified byte-for-byte against
//! direct `Peps` runs), sends a garbage frame and keeps its connection,
//! reads per-tenant stats, and then watches a live ingest flip the
//! serving epoch between batches — no restart, no stop-the-world.
//!
//! ```text
//! cargo run --release --example preference_server
//! ```

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use hypre_bench::ingest::split_corpus;
use hypre_repro::core::serve::wire::{
    self, ErrorCode, Request, Response, WireAtom, MAX_FRAME_BYTES,
};
use hypre_repro::core::serve::{ServeConfig, Server};
use hypre_repro::dblp::{extract, gen};
use hypre_repro::prelude::*;
use hypre_repro::relstore::{Database, Predicate};

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    // 1. A corpus split append-only: 90 % live at warm-up, the rest
    //    arrives mid-serving as an epoch-2 delta.
    let dataset = gen::generate(&gen::GeneratorConfig {
        papers: 2000,
        authors: 800,
        venues: 30,
        ..gen::GeneratorConfig::default()
    });
    let workload = extract::extract(&dataset, &extract::ExtractionConfig::default());
    let split = split_corpus(&dataset, 0.9);

    // 2. Two tenants with different preference profiles.
    let mut graph = HypreGraph::new();
    graph.load(&workload.quantitative, &workload.qualitative)?;
    let mut users = graph.users();
    users.sort_by_key(|u| std::cmp::Reverse(graph.positive_profile(*u).len()));
    let rich = graph.positive_profile(users[0]);
    let modest = graph.positive_profile(users[users.len() / 2]);
    println!(
        "tenants: rich profile {} atoms, modest profile {} atoms",
        rich.len(),
        modest.len()
    );

    // 3. Warm both profiles on the base corpus, publish as epoch 1, and
    //    put the scheduler behind a 2-shard TCP server. The server owns
    //    the full (append-only grown) corpus; pinned epoch-1 sessions
    //    still answer base-corpus results because every tuple set comes
    //    from the epoch snapshot, not from SQL.
    let predicates: Vec<&Predicate> = rich
        .iter()
        .chain(modest.iter())
        .map(|a| &a.predicate)
        .collect();
    let cache = ProfileCache::warm(&split.base, BaseQuery::dblp(), predicates)?;
    let epochs = Arc::new(EpochCache::new(cache));
    let db = Arc::new(split.full.clone());
    let server = Server::start(
        Arc::clone(&db),
        Arc::clone(&epochs),
        ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        },
    )?;
    println!("serving on {}", server.local_addr());

    // 4. A client connects and pings.
    let mut client = TcpStream::connect(server.local_addr())?;
    client.set_read_timeout(Some(Duration::from_secs(30)))?;
    send(&mut client, &Request::Ping)?;
    assert_eq!(recv(&mut client)?, Response::Pong);

    // 5. Pipelined Top-K for both tenants in one write; the shard
    //    batches them, evaluates each distinct profile once, and the
    //    answers are byte-identical to direct in-process PEPS runs over
    //    the base corpus (the pinned epoch).
    let mut burst = Vec::new();
    for (tenant, profile) in [(1u64, &rich), (2u64, &modest)] {
        let payload = wire::encode_request(&top_k_request(tenant, 10, profile));
        burst.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        burst.extend_from_slice(&payload);
    }
    use std::io::Write as _;
    client.write_all(&burst)?;
    for profile in [&rich, &modest] {
        let want = solo_top_k(&split.base, profile, 10)?;
        match recv(&mut client)? {
            Response::TopK(ranked) => assert_eq!(ranked, want, "server must match solo PEPS"),
            other => panic!("expected a TopK reply, got {other:?}"),
        }
    }
    println!("epoch 1: both tenants served, byte-identical to solo PEPS");

    // 6. A garbage frame gets a typed error — and the same connection
    //    keeps serving.
    wire::write_frame(&mut client, &[0xEE, 0xFF])?;
    match recv(&mut client)? {
        Response::Error { code, detail } => {
            assert_eq!(code, ErrorCode::UnknownOpcode);
            println!("garbage frame rejected: {detail}");
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
    send(&mut client, &Request::Ping)?;
    assert_eq!(recv(&mut client)?, Response::Pong, "connection survives");

    // 7. The delta goes live mid-serving: epoch 2 is published and the
    //    serving loop drains to it at the next batch boundary. The very
    //    next answers match a cold executor over the full corpus.
    let report = epochs.ingest(&split.full, 0)?;
    println!(
        "ingested delta: {} new tuples, {} predicates re-scored, now epoch {}",
        report.new_tuples,
        report.changed.len(),
        epochs.current_epoch()
    );
    send(&mut client, &top_k_request(1, 10, &rich))?;
    let want_new = solo_top_k(&split.full, &rich, 10)?;
    match recv(&mut client)? {
        Response::TopK(ranked) => {
            assert_eq!(ranked, want_new, "drained batches serve the new epoch");
        }
        other => panic!("expected a TopK reply, got {other:?}"),
    }
    println!("epoch 2: drained without a restart, answers match a cold executor");

    // 8. Per-tenant accounting straight off the wire.
    send(&mut client, &Request::Stats { tenant: 1 })?;
    match recv(&mut client)? {
        Response::Stats(stats) => {
            println!(
                "tenant 1: {} requests ({} errors); server total {} requests, \
                 {} batches, {} groups, {} shared evaluations",
                stats.tenant_requests,
                stats.tenant_errors,
                stats.total_requests,
                stats.batches,
                stats.groups,
                stats.shared
            );
            assert_eq!(stats.tenant_requests, 2);
            assert_eq!(stats.tenant_errors, 0);
        }
        other => panic!("expected a Stats reply, got {other:?}"),
    }

    // 9. Clean shutdown: stop flag, acceptor woken, shards joined.
    drop(client);
    server.shutdown();
    println!("server drained and shut down cleanly");
    Ok(())
}

fn top_k_request(tenant: u64, k: u32, atoms: &[PrefAtom]) -> Request {
    Request::TopK {
        tenant,
        k,
        variant: PepsVariant::Complete,
        atoms: atoms
            .iter()
            .map(|a| WireAtom {
                predicate: a.predicate.canonical(),
                intensity: a.intensity,
            })
            .collect(),
    }
}

fn solo_top_k(db: &Database, atoms: &[PrefAtom], k: usize) -> Result<Vec<RankedTuple>> {
    let exec = Executor::new(db, BaseQuery::dblp());
    let pairs = PairwiseCache::build(atoms, &exec)?;
    Peps::new(atoms, &exec, &pairs, PepsVariant::Complete).top_k(k)
}

fn send(stream: &mut TcpStream, req: &Request) -> std::io::Result<()> {
    wire::write_frame(stream, &wire::encode_request(req))
}

fn recv(stream: &mut TcpStream) -> std::result::Result<Response, Box<dyn std::error::Error>> {
    let payload = wire::read_frame(stream, MAX_FRAME_BYTES)?;
    Ok(wire::decode_response(&payload)?)
}
