//! # hypre-repro — a reproduction of the HYPRE hybrid preference model
//!
//! Umbrella facade re-exporting the workspace crates that reproduce
//! *"Unifying Qualitative and Quantitative Database Preferences to Enhance
//! Query Personalization"* (Gheorghiu, 2014):
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`core`] | `hypre-core` | The HYPRE preference graph, intensity propagation, combination algorithms (incl. PEPS) and metrics |
//! | [`relstore`] | `relstore` | Embedded relational engine (the MySQL substitute) |
//! | [`graphstore`] | `graphstore` | Embedded property-graph engine (the Neo4j substitute) |
//! | [`topk`] | `hypre-topk` | Fagin's TA and NRA Top-K baselines |
//! | [`dblp`] | `dblp-workload` | Synthetic DBLP corpus + §6.2 preference extraction |
//!
//! See the repository README for a walkthrough, `examples/` for runnable
//! scenarios, and `crates/bench` for the experiment harness regenerating
//! every table and figure of the dissertation's evaluation.
//!
//! ```
//! use hypre_repro::prelude::*;
//! use hypre_repro::relstore::parse_predicate;
//!
//! let mut graph = HypreGraph::new();
//! let me = UserId(1);
//! graph.add_quantitative(&QuantitativePref::new(
//!     me,
//!     parse_predicate("movie.genre='comedy'").unwrap(),
//!     Intensity::new(0.9).unwrap(),
//! ));
//! assert_eq!(graph.positive_profile(me).len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// The paper's primary contribution: the HYPRE model and algorithms.
pub use hypre_core as core;

/// The relational substrate.
pub use relstore;

/// The property-graph substrate.
pub use graphstore;

/// Top-K baselines (TA, NRA).
pub use hypre_topk as topk;

/// The DBLP workload generator and preference extraction.
pub use dblp_workload as dblp;

/// Everything a typical user needs, re-exported flat.
pub mod prelude {
    pub use hypre_core::prelude::*;
}
